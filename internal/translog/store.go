package translog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vnfguard/internal/obs"
)

// Durable-state errors. Recovery distinguishes the three ways a statedir
// can disagree with its own signed tree head, because operators react
// differently to each: corruption wants a restore from backup, rollback
// and tamper want an incident response — a restart must never quietly
// re-serve a rewritten history (that would be exactly the attack the
// witness exists to catch, executed locally).
var (
	// ErrStateCorrupt reports a damaged record: a checksum mismatch or an
	// impossible frame somewhere other than a cleanly torn tail.
	ErrStateCorrupt = errors.New("translog: on-disk log state corrupt") //lint:allow unusedexport README-documented recovery taxonomy; reaches callers wrapped in open errors
	// ErrStateRollback reports fewer durable entries than the persisted
	// signed tree head covers — committed history was deleted.
	ErrStateRollback = errors.New("translog: on-disk log state rolled back")
	// ErrStateTampered reports durable entries whose recomputed Merkle
	// root contradicts the persisted signed tree head — history was
	// rewritten in place.
	ErrStateTampered = errors.New("translog: on-disk log state tampered") //lint:allow unusedexport README-documented recovery taxonomy; reaches callers wrapped in open errors
)

// Append-path errors the HTTP layer maps to status codes, so a producer
// can tell "this batch is unacceptable" (drop it) from "the store is
// down" (retry later).
var (
	// ErrEntryTooLarge reports an entry whose encoding exceeds the WAL
	// record frame limit; it is refused before any byte is written and
	// the store stays healthy.
	ErrEntryTooLarge = errors.New("translog: entry exceeds record size limit") //lint:allow unusedexport append error contract the HTTP layer maps to a status code; errors.Is target
	// ErrStoreFailed reports a latched durable-store failure (or a closed
	// store): every append fails until the store is reopened.
	ErrStoreFailed = errors.New("translog: durable store unavailable") //lint:allow unusedexport append error contract the HTTP layer maps to a status code; errors.Is target
)

// sthFileName holds the latest durably persisted signed tree head.
const sthFileName = "sth.json"

// shardsFileName pins a sharded store's stream count at creation, so
// reopening with a different StoreConfig.Shards cannot silently change
// the host→stream routing (the on-disk layout really is fixed at store
// creation, as documented). The count is layout metadata, not trust
// state: the records themselves are authenticated by their global
// indices under the signed root, whatever stream they sit in.
const shardsFileName = "shards"

// loadShardCount reads the pinned stream count; ok=false when the store
// predates sharding or is single-stream.
func loadShardCount(dir string) (int, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, shardsFileName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("translog: reading shard count: %w", err)
	}
	n, perr := strconv.Atoi(strings.TrimSpace(string(data)))
	if perr != nil || n < 2 || n > maxShardSlots {
		return 0, false, fmt.Errorf("%w: shard count file holds %q", ErrStateCorrupt, strings.TrimSpace(string(data)))
	}
	return n, true, nil
}

// saveShardCount pins the stream count at store creation.
func saveShardCount(dir string, n int, noSync bool) error {
	return atomicWriteFile(filepath.Join(dir, shardsFileName), []byte(strconv.Itoa(n)), !noSync)
}

// StoreConfig tunes the durable store.
type StoreConfig struct {
	// SegmentMaxBytes rotates to a fresh segment file once the active one
	// reaches this size (default 1 MiB).
	SegmentMaxBytes int64
	// NoSync skips fsync on the append path. Only for tests and
	// benchmarks that measure the non-durability costs; a production log
	// without fsync can lose acknowledged entries on power failure.
	NoSync bool
	// Anchors are additional trust anchors layered over the built-in
	// persisted-head check (anchor.go): each is verified against the
	// recovered state at open and notified of every committed head, in
	// order. Anchors that implement io.Closer are closed with the store.
	Anchors []TrustAnchor
	// Shards, when > 1, splits the WAL into that many per-host segment
	// streams (seg-h<shard>-*.wal): every entry is routed to the stream
	// ShardOf picks for its host and framed with its global tree index,
	// so a merging sequencer can commit many hosts' batches under one
	// tree head — the touched streams are written and fsynced in
	// parallel, then the head and anchor chain bump once per cycle —
	// while recovery interleaves the streams back into the exact global
	// order. The layout is fixed at store creation: opening an existing
	// store keeps whichever layout is on disk. 0 or 1 keeps the single
	// stream.
	Shards int
	// CheckpointEvery, when > 0, persists an anchor-verified checkpoint
	// (frozen subtree roots + serial-index snapshot, signed by the log
	// key) every time the log grows that many entries past the previous
	// checkpoint, and compacts the WAL segments the checkpoint froze
	// into read-optimised archive files. Recovery then replays only the
	// WAL suffix past the checkpoint instead of the whole log — the
	// flat-restart property a long-lived production log needs. 0
	// disables checkpointing (every open replays from index zero,
	// exactly as before).
	CheckpointEvery uint64
}

// Store is the write-ahead, append-only on-disk half of a durable Log:
// length-prefixed checksummed records in size-capped segment files plus
// an atomically replaced latest signed tree head. All writes arrive
// pre-batched from Log.AppendBatch, so one store call — and therefore
// one fsync of the active segment and one of the tree head — covers a
// whole appender batch.
type Store struct { //lint:allow unusedexport the documented storage layer beneath Log; exported seam for store-level tests and benchmarks
	dir string
	cfg StoreConfig
	// anchors is the full trust-anchor chain, the built-in sthAnchor
	// first: every committed head flows through each of them.
	anchors []TrustAnchor
	// anchorHist are the chain's pre-resolved per-anchor commit-latency
	// histograms, parallel to anchors — resolved once at open so the
	// commit path never touches the telemetry registry.
	anchorHist []*obs.Histogram

	// lastCkpt is the size covered by the newest durable checkpoint
	// (0 when none): the log's checkpoint trigger compares it against
	// the committed size.
	lastCkpt atomic.Uint64
	// compactMu serialises compaction runs against cold-prefix reads,
	// so hydration never races a segment unlink.
	compactMu sync.Mutex

	mu sync.Mutex
	// shards is the active layout: 0 for the legacy single stream,
	// otherwise the number of per-host streams. It is fixed at open.
	shards int
	// streams are the append tails — one for the single layout, shards
	// of them otherwise. Streams rotate their segment files
	// independently.
	streams []*stream
	// size is the number of durably framed entries.
	size uint64
	// failed latches the first write error: after a partial batch write
	// the in-memory log and the disk may disagree, so the store refuses
	// further appends instead of compounding the divergence.
	failed error
}

// stream is one append tail: the legacy whole-log stream (shard < 0) or
// one host slot's segment stream.
type stream struct {
	shard int
	// active is the open tail segment (nil until the first append or
	// when the last recovery ended exactly on a rotation boundary).
	active     *os.File
	activeSize int64
	// count is the number of records durably framed in this stream — the
	// next segment's first ordinal (for the legacy stream this equals
	// the global entry count).
	count uint64
	// scratch is the stream's reusable frame buffer: one writer owns a
	// stream at a time, so recycling it keeps a large commit cycle from
	// allocating (and the runtime from zeroing) megabytes per cycle.
	scratch []byte
}

// name renders the segment file name for the stream's segment whose
// first record is ordinal first.
func (st *stream) name(first uint64) string {
	if st.shard < 0 {
		return segmentName(first)
	}
	return shardSegmentName(st.shard, first)
}

// openStoreDir creates the store directory and returns a Store resuming
// the verified recovered state rec. anchors is the trust-anchor chain
// (built-in sthAnchor first).
func openStoreDir(dir string, cfg StoreConfig, anchors []TrustAnchor, rec *recovered) (*Store, error) {
	if cfg.SegmentMaxBytes <= 0 {
		cfg.SegmentMaxBytes = defaultSegmentMaxBytes
	}
	s := &Store{dir: dir, cfg: cfg, anchors: anchors, shards: rec.shards, size: rec.size()}
	for _, a := range anchors {
		s.anchorHist = append(s.anchorHist, anchorHistogram(a.Name()))
	}
	for i, tail := range rec.tails {
		st := &stream{shard: -1, count: tail.count}
		if rec.shards > 0 {
			st.shard = i
		}
		if tail.hasTail {
			path := filepath.Join(dir, st.name(tail.tailFirst))
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
			if err != nil {
				s.closeStreams()
				return nil, fmt.Errorf("translog: reopening tail segment: %w", err)
			}
			st.active, st.activeSize = f, tail.tailClean
		}
		s.streams = append(s.streams, st)
	}
	return s, nil
}

// closeStreams closes any tail files already opened (error-path cleanup).
func (s *Store) closeStreams() {
	for _, st := range s.streams {
		if st.active != nil {
			st.active.Close()
			st.active = nil
		}
	}
}

// shardCount reports the number of per-host streams the store writes
// (0 for the legacy single-stream layout). Fixed at open, so reading it
// without the lock is safe.
func (s *Store) shardCount() int { return s.shards }

// checkpointDue reports whether the committed size has outgrown the
// newest checkpoint by the configured interval.
func (s *Store) checkpointDue(size uint64) bool {
	return s.cfg.CheckpointEvery > 0 && size >= s.lastCkpt.Load()+s.cfg.CheckpointEvery
}

// streamCounts snapshots each stream's durable record count (nil for
// the single-stream layout, whose count is the global size). Callers
// hold the log lock, so no commit is in flight and the counts
// correspond exactly to the committed tree.
func (s *Store) streamCounts() []uint64 {
	if s.shards == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := make([]uint64, len(s.streams))
	for i, st := range s.streams {
		counts[i] = st.count
	}
	return counts
}

// appendBatch durably frames the batch payloads and then commits sth to
// every trust anchor. shardIdx routes each payload to its host stream in
// a sharded store (ignored — may be nil — for the single stream).
// Ordering matters for crash consistency: records first (fsynced), tree
// head second — a crash in between leaves extra durable entries beyond
// the head, which recovery accepts and re-signs; the reverse order could
// leave a head signing entries that were never written. The anchor chain
// runs under the same lock, so a batch is acknowledged only once every
// anchor (persisted head, witness head, sealed counter) has recorded it.
// tr, when non-nil, receives the cycle's wal_sync and anchor_commit
// phase durations (the sequencer's trace record).
func (s *Store) appendBatch(payloads [][]byte, shardIdx []int, sth SignedTreeHead, tr *obs.CycleTrace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	// Enforce the recovery-side frame bound before anything is written:
	// an oversized record would commit durably but then fail every future
	// open with ErrStateCorrupt — a log that bricks itself. Refusing here
	// keeps the in-memory and on-disk state consistent (the caller rolls
	// the batch back) without latching the store failed.
	limit := maxRecordBytes
	if s.shards > 0 {
		limit = maxShardedEntryBytes
	}
	for _, p := range payloads {
		if len(p) > limit {
			return fmt.Errorf("%w: encoding is %d bytes, record limit %d", ErrEntryTooLarge, len(p), limit)
		}
	}
	phase := time.Now()
	var err error
	if s.shards > 0 {
		err = s.writeShardedRecords(payloads, shardIdx)
	} else {
		size := 0
		for _, p := range payloads {
			size += recordHeaderLen + len(p)
		}
		err = s.streams[0].write(s, len(payloads), size, func(i int, dst []byte) []byte {
			return appendRecord(dst, payloads[i])
		})
	}
	if err != nil {
		s.failed = fmt.Errorf("%w: %w", ErrStoreFailed, err)
		return s.failed
	}
	walSync := time.Since(phase)
	mPhaseWALSync.Observe(walSync)
	phase = time.Now()
	if err := s.commitHeadLocked(sth); err != nil {
		s.failed = fmt.Errorf("%w: %w", ErrStoreFailed, err)
		return s.failed
	}
	anchor := time.Since(phase)
	mPhaseAnchor.Observe(anchor)
	if tr != nil {
		tr.WALSync, tr.Anchor = walSync, anchor
	}
	s.size += uint64(len(payloads))
	return nil
}

// writeShardedRecords routes each payload to its host stream, stamped
// with its global index, and writes the touched streams concurrently —
// they are separate files, so their record writes and fsyncs overlap.
// Every stream's write must return before the head is persisted, which
// preserves the records-before-head crash ordering; a failure in any
// stream fails the batch (and the caller latches the store), because a
// partially landed cycle may no longer match the in-memory log.
func (s *Store) writeShardedRecords(payloads [][]byte, shardIdx []int) error {
	perShard := make([][]int, s.shards)
	for i := range payloads {
		shard := 0
		if i < len(shardIdx) {
			shard = shardIdx[i]
		}
		if shard < 0 || shard >= s.shards {
			return fmt.Errorf("translog: shard %d out of range (store has %d)", shard, s.shards)
		}
		perShard[shard] = append(perShard[shard], i)
	}
	var wg sync.WaitGroup
	errs := make([]error, s.shards)
	base := s.size
	for shard, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			size := 0
			for _, i := range idxs {
				size += recordHeaderLen + shardIndexLen + len(payloads[i])
			}
			errs[shard] = s.streams[shard].write(s, len(idxs), size, func(k int, dst []byte) []byte {
				i := idxs[k]
				return appendIndexedRecord(dst, base+uint64(i), payloads[i])
			})
		}(shard, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// commitHead runs the anchor chain for a head committed outside a batch
// append (the open-time re-sign of a stale head).
func (s *Store) commitHead(sth SignedTreeHead) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitHeadLocked(sth)
}

// commitHeadLocked records sth with every trust anchor, in order.
// Callers hold s.mu.
func (s *Store) commitHeadLocked(sth SignedTreeHead) error {
	for i, a := range s.anchors {
		start := time.Now()
		if err := a.CommitHead(sth); err != nil {
			return fmt.Errorf("translog: %s anchor: %w", a.Name(), err)
		}
		s.anchorHist[i].Observe(time.Since(start))
	}
	return nil
}

// write appends n records to the stream's active segment, rotating at
// the size cap; frame(i, dst) appends record i's framed bytes to dst, so
// the cycle's records land in one buffer with no per-record allocation.
// Every touched segment is fsynced before the batch is acknowledged:
// rotation syncs the segment it retires, and the tail sync below covers
// the one left active. Callers hold s.mu (or, for the parallel sharded
// path, own the stream exclusively for the duration).
func (st *stream) write(s *Store, n, sizeHint int, frame func(i int, dst []byte) []byte) error {
	if cap(st.scratch) < sizeHint {
		st.scratch = make([]byte, 0, sizeHint)
	}
	pending := st.scratch[:0]
	defer func() { st.scratch = pending[:0] }()
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if _, err := st.active.Write(pending); err != nil {
			return fmt.Errorf("translog: writing segment: %w", err)
		}
		mWALBytes.Add(uint64(len(pending)))
		st.activeSize += int64(len(pending))
		pending = pending[:0]
		return nil
	}
	next := st.count
	for i := 0; i < n; i++ {
		if st.active == nil || st.activeSize+int64(len(pending)) >= s.cfg.SegmentMaxBytes {
			if err := flush(); err != nil {
				return err
			}
			if err := st.rotate(s, next); err != nil {
				return err
			}
		}
		pending = frame(i, pending)
		next++
	}
	if err := flush(); err != nil {
		return err
	}
	if !s.cfg.NoSync {
		if err := st.active.Sync(); err != nil {
			return fmt.Errorf("translog: fsync segment: %w", err)
		}
		mWALFsyncs.Inc()
	}
	st.count = next
	return nil
}

// rotate closes the stream's active segment and opens a fresh one whose
// first record will be stream ordinal first.
func (st *stream) rotate(s *Store, first uint64) error {
	if st.active != nil {
		if !s.cfg.NoSync {
			if err := st.active.Sync(); err != nil {
				return fmt.Errorf("translog: fsync segment: %w", err)
			}
			mWALFsyncs.Inc()
		}
		if err := st.active.Close(); err != nil {
			return fmt.Errorf("translog: closing segment: %w", err)
		}
		st.active = nil
		mWALRolls.Inc()
	}
	path := filepath.Join(s.dir, st.name(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("translog: creating segment: %w", err)
	}
	st.active, st.activeSize = f, 0
	if !s.cfg.NoSync {
		if err := syncDir(s.dir); err != nil {
			f.Close()
			st.active = nil
			return err
		}
	}
	return nil
}

// persistSTHFile atomically replaces the durable tree head. It is the
// sthAnchor's persistence primitive.
func persistSTHFile(dir string, sth SignedTreeHead, noSync bool) error {
	data, err := json.Marshal(sth)
	if err != nil {
		return fmt.Errorf("translog: encoding tree head: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, sthFileName), data, !noSync)
}

// atomicWriteFile replaces path with data using the crash-safe write
// discipline shared by every durable file in a store (tmp + write +
// fsync + rename + dir sync, statedir.Dir.Write plus durability):
// readers see either the old contents or the new, a crash never
// surfaces a partial file, and with sync the replacement itself is
// durable before the call returns.
func atomicWriteFile(path string, data []byte, sync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("translog: writing %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("translog: writing %s: %w", filepath.Base(path), err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("translog: fsync %s: %w", filepath.Base(path), err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("translog: closing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("translog: replacing %s: %w", filepath.Base(path), err)
	}
	if sync {
		return syncDir(filepath.Dir(path))
	}
	return nil
}

// loadSTH reads the persisted tree head; ok=false when none exists yet
// (a store that has never been opened).
func loadSTH(dir string) (SignedTreeHead, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, sthFileName))
	if errors.Is(err, os.ErrNotExist) {
		return SignedTreeHead{}, false, nil
	}
	if err != nil {
		return SignedTreeHead{}, false, fmt.Errorf("translog: reading tree head: %w", err)
	}
	var sth SignedTreeHead
	if err := json.Unmarshal(data, &sth); err != nil {
		return SignedTreeHead{}, false, fmt.Errorf("%w: tree head undecodable: %v", ErrStateCorrupt, err)
	}
	return sth, true, nil
}

// Size returns the durably persisted entry count.
func (s *Store) Size() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close fsyncs and closes the active segment and releases any anchors
// holding resources. A closed store latches failed, so a stray later
// append errors instead of silently forking a new segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil {
		s.failed = fmt.Errorf("%w: store closed", ErrStoreFailed)
	}
	var err error
	for _, a := range s.anchors {
		if c, ok := a.(io.Closer); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	for _, st := range s.streams {
		if st.active == nil {
			continue
		}
		f := st.active
		st.active = nil
		if !s.cfg.NoSync {
			if serr := f.Sync(); serr != nil {
				f.Close()
				if err == nil {
					err = fmt.Errorf("translog: fsync segment: %w", serr)
				}
				continue
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("translog: opening store dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("translog: fsync store dir: %w", err)
	}
	return nil
}
