package translog

import (
	"crypto/sha256"
	"runtime"
	"sync"
	"time"

	"vnfguard/internal/obs"
)

// The merging sequencer: the background half of the ShardedAppender. It
// wakes on a kick (a shard buffer filled, a Flush) or the flush-interval
// tick, and runs cycles until every shard buffer is empty. One cycle =
// drain up to MaxBatch entries from each shard, starting at a rotating
// shard so no host is structurally last (round-robin); marshal and
// leaf-hash the merged batch on every core; commit it through
// Log.appendPrepared as ONE batch — global indices assigned under the
// log lock, one tree-head signature, one persisted head, one
// trust-anchor bump. On a sharded store the commit also fans the
// records out to the per-host segment streams, which write and fsync in
// parallel. The per-entry cost of the serial commit work therefore
// shrinks with the number of hosts that had entries ready, which is
// what lets the log ingest a fleet without serialising it.

// loop is the sequencer goroutine.
func (sa *ShardedAppender) loop() {
	ticker := time.NewTicker(sa.interval)
	defer ticker.Stop()
	for {
		select {
		case <-sa.done:
			// The final cycle: Close has already fenced new appends, so
			// this drains everything that made it into a buffer.
			sa.commitCycle()
			return
		case <-sa.kick:
			sa.commitCycle()
		case <-ticker.C:
			sa.commitCycle()
		}
	}
}

// cycleBuffers is one cycle's reusable storage. A cycle's batch,
// payload arena and hash slice are dead the moment its commit returns,
// and the pipeline is one deep, so two sets ping-pong forever: cycle
// N+1 fills one while cycle N commits out of the other. That keeps a
// steady-state sequencer from allocating (and the collector from
// scanning) megabytes per cycle.
type cycleBuffers struct {
	batch    []Entry
	payloads [][]byte
	hashes   []Hash
	// arena backs the serial prepare path; arenas back the parallel
	// path, one per worker slot.
	arena  []byte
	arenas [][]byte
	// trace is the cycle's phase/contribution record, reset per cycle.
	// It rides the ping-ponged buffers so the pipelined gather of cycle
	// N+1 never races the commit of cycle N over one trace.
	trace obs.CycleTrace
}

// gatherPrepare drains one cycle's worth of shard buffers into bufs and
// hashes it, nil when every buffer is empty.
func (sa *ShardedAppender) gatherPrepare(bufs *cycleBuffers) *cycleBuffers {
	bufs.trace.Reset()
	start := time.Now()
	bufs.batch = sa.gather(bufs.batch[:0], &bufs.trace)
	if len(bufs.batch) == 0 {
		return nil
	}
	bufs.trace.Entries = len(bufs.batch)
	bufs.trace.Gather = time.Since(start)
	start = time.Now()
	prepareEntriesInto(bufs, sa.workers)
	bufs.trace.Marshal = time.Since(start)
	return bufs
}

// commitCycle runs merge-and-commit cycles until the buffers are empty,
// pipelined one deep: while cycle N sits in the log commit (tree, head
// signature, stream writes, fsyncs), cycle N+1 is already being gathered
// and hashed — the commit's I/O wait hides the next cycle's CPU.
// committing is raised before the first buffer is drained and stays up
// until the last gathered entry is committed, so a concurrent Flush can
// never observe "buffers empty, nothing committing" while entries are
// in flight between a buffer and the tree.
func (sa *ShardedAppender) commitCycle() {
	sa.mu.Lock()
	sa.committing = true
	sa.mu.Unlock()
	cur := sa.gatherPrepare(&sa.bufs[0])
	spare := &sa.bufs[1]
	for cur != nil {
		next := make(chan *cycleBuffers, 1)
		go func(bufs *cycleBuffers) { next <- sa.gatherPrepare(bufs) }(spare)
		commitStart := time.Now()
		_, err := sa.log.appendPreparedTraced(cur.batch, cur.payloads, cur.hashes, &cur.trace)
		if err != nil {
			sa.mu.Lock()
			if sa.err == nil {
				sa.err = err
			}
			sa.mu.Unlock()
		}
		cur.trace.Total = cur.trace.Gather + cur.trace.Marshal + time.Since(commitStart)
		mCycles.Inc()
		mCycleSeconds.Observe(cur.trace.Total)
		mPhaseGather.Observe(cur.trace.Gather)
		mPhaseMarshal.Observe(cur.trace.Marshal)
		if sa.slowBudget > 0 && cur.trace.Total > sa.slowBudget {
			mSlowCycles.Inc()
			sa.slowLog("translog: slow sequencer cycle (budget %v): %s", sa.slowBudget, &cur.trace)
		}
		spare = cur // cur's commit is done; its buffers are free again
		cur = <-next
	}
	sa.mu.Lock()
	sa.committing = false
	sa.idle.Broadcast()
	sa.mu.Unlock()
}

// gather drains up to MaxBatch entries from each shard into batch,
// round-robin from a rotating start, recording each shard's
// contribution in tr.
func (sa *ShardedAppender) gather(batch []Entry, tr *obs.CycleTrace) []Entry {
	n := len(sa.shards)
	start := sa.next
	sa.next = (start + 1) % n
	for i := 0; i < n; i++ {
		slot := (start + i) % n
		sh := sa.shards[slot]
		sh.mu.Lock()
		take := sh.buffered()
		if take > sa.maxBatch {
			take = sa.maxBatch
		}
		if take > 0 {
			batch = append(batch, sh.pending[sh.head:sh.head+take]...)
			sh.head += take
			if sh.head == len(sh.pending) {
				// Fully drained: recycle the backing array (capacity
				// kept) instead of re-growing — and re-zeroing — a fresh
				// one every cycle.
				sh.pending = sh.pending[:0]
				sh.head = 0
			} else if sh.head >= 4096 && sh.head*2 >= len(sh.pending) {
				// A shard that never quite empties must not grow its
				// array forever behind an advancing cursor; compacting
				// only once the drained half dominates keeps the move
				// amortised O(1) per entry.
				rest := copy(sh.pending, sh.pending[sh.head:])
				sh.pending = sh.pending[:rest]
				sh.head = 0
			}
		}
		sh.mu.Unlock()
		if take > 0 {
			tr.Hosts = append(tr.Hosts, obs.ShardContribution{Shard: slot, Entries: take})
			sa.shardInst[slot].drained.Add(uint64(take))
			sa.shardInst[slot].buffered.Add(-int64(take))
		}
	}
	return batch
}

// prepareWorkers picks the fan-out for prepareEntries.
func prepareWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// prepareEntries computes the canonical encodings and leaf hashes for a
// batch — the simple allocating form AppendBatch uses for one-off
// batches.
func prepareEntries(batch []Entry, workers int) ([][]byte, []Hash) {
	bufs := &cycleBuffers{batch: batch}
	prepareEntriesInto(bufs, workers)
	return bufs.payloads, bufs.hashes
}

// prepareEntriesInto computes the canonical encodings and leaf hashes
// for bufs.batch, fanning the work across workers when the batch is big
// enough to pay for the goroutines. This is the serial cost the single
// appender pays under its own commit; the sequencer's merged cycles run
// it on every core before the log lock is taken. Entries marshal into
// an arena with the RFC 6962 leaf prefix in place — the leaf hash runs
// straight over the arena, no per-entry allocation — and the arena and
// result slices recycle through bufs across cycles.
func prepareEntriesInto(bufs *cycleBuffers, workers int) {
	batch := bufs.batch
	n := len(batch)
	if cap(bufs.payloads) < n {
		bufs.payloads = make([][]byte, n)
	}
	bufs.payloads = bufs.payloads[:n]
	if cap(bufs.hashes) < n {
		bufs.hashes = make([]Hash, n)
	}
	bufs.hashes = bufs.hashes[:n]
	payloads, hashes := bufs.payloads, bufs.hashes
	prep := func(lo, hi int, arena []byte) {
		for i := lo; i < hi; i++ {
			start := len(arena)
			arena = append(arena, leafPrefix)
			arena = batch[i].appendTo(arena)
			leaf := arena[start:len(arena):len(arena)]
			payloads[i] = leaf[1:]
			hashes[i] = sha256.Sum256(leaf)
		}
	}
	arenaFor := func(lo, hi int, scratch []byte) []byte {
		size := 0
		for i := lo; i < hi; i++ {
			size += 1 + batch[i].marshalledSize()
		}
		if cap(scratch) < size {
			return make([]byte, 0, size)
		}
		return scratch[:0]
	}
	if workers <= 1 || n < 128 {
		bufs.arena = arenaFor(0, n, bufs.arena)
		prep(0, n, bufs.arena)
		return
	}
	chunk := (n + workers - 1) / workers
	if len(bufs.arenas) < workers {
		bufs.arenas = append(bufs.arenas, make([][]byte, workers-len(bufs.arenas))...)
	}
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		// Size the worker's recycled arena up front: prep never grows it,
		// so storing the slice back before the goroutine runs is safe.
		bufs.arenas[w] = arenaFor(lo, hi, bufs.arenas[w])
		wg.Add(1)
		go func(lo, hi int, arena []byte) {
			defer wg.Done()
			prep(lo, hi, arena)
		}(lo, hi, bufs.arenas[w])
	}
	wg.Wait()
}
