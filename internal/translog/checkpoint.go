package translog

import (
	"bytes"
	"crypto"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoints: anchor-verified summaries of the cold prefix, so open
// replays only the WAL suffix.
//
// A checkpoint persists, for one already-committed tree head: the
// frozen subtree roots of the head size's binary decomposition (≤64
// hashes, whatever the log size), the signed tree head itself, the
// per-stream record counts of a sharded layout, and a snapshot of the
// serial indexes (issuance map + revoked set) derived from the cold
// entries. Recovery seeds a suffix tree from the blocks, replays only
// records at or past the checkpoint, and hands the trust-anchor chain a
// RootAt that covers every size ≥ the checkpoint — which is every size
// any anchor can remember, because a checkpoint is only ever written
// for a head the whole chain has already acknowledged.
//
// Verification at load is layered so each failure keeps its meaning:
// a CRC mismatch is ErrStateCorrupt (damage); an invalid checkpoint or
// inner head signature, or blocks that do not fold to the signed root,
// is ErrStateTampered (rewrite); a checkpoint claiming a size beyond
// the persisted head is ErrStateRollback (the statedir was rewound
// around a newer checkpoint). The serial snapshot is not covered by the
// Merkle root — it is derived state — so the checkpoint signature
// covers it explicitly; editing it in place is tamper, not corruption.

// checkpointFileName holds the newest durable checkpoint.
const checkpointFileName = "checkpoint.bin"

// ckptMagic identifies a checkpoint file (and its format version).
var ckptMagic = [8]byte{'V', 'N', 'F', 'G', 'C', 'K', 'P', '1'}

// ckptSigPrefix domain-separates checkpoint signatures from tree-head
// signatures under the same log key.
const ckptSigPrefix = "vnfguard-translog-ckpt-v1"

// checkpoint is the decoded, verified checkpoint state.
type checkpoint struct {
	size   uint64
	sth    SignedTreeHead
	blocks []Hash
	// streamCounts is the per-stream record count at the checkpoint for
	// a sharded layout (nil for the single stream): how many of each
	// stream's records are cold.
	streamCounts []uint64
	issuance     map[string]uint64
	revoked      map[string]bool
}

// ckptHeader is the JSON header inside the checkpoint file.
type ckptHeader struct {
	Size         uint64         `json:"size"`
	STH          SignedTreeHead `json:"sth"`
	Blocks       []Hash         `json:"blocks"`
	StreamCounts []uint64       `json:"stream_counts,omitempty"`
}

// ckptDigest is the SHA-256 the checkpoint signature covers: the domain
// prefix, the header encoding and the serial-snapshot encoding.
func ckptDigest(hdr, snap []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(ckptSigPrefix))
	h.Write(hdr)
	h.Write(snap)
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// appendSnapshot encodes the serial indexes: both maps sorted by
// nothing in particular (order does not matter — the signature covers
// whatever order was written, and loads rebuild the maps).
func appendSnapshot(dst []byte, issuance map[string]uint64, revoked map[string]bool) []byte {
	var u32 [4]byte
	var u64 [8]byte
	var u16 [2]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(issuance)))
	dst = append(dst, u32[:]...)
	for serial, idx := range issuance {
		binary.BigEndian.PutUint16(u16[:], uint16(len(serial)))
		dst = append(dst, u16[:]...)
		dst = append(dst, serial...)
		binary.BigEndian.PutUint64(u64[:], idx)
		dst = append(dst, u64[:]...)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(revoked)))
	dst = append(dst, u32[:]...)
	for serial := range revoked {
		binary.BigEndian.PutUint16(u16[:], uint16(len(serial)))
		dst = append(dst, u16[:]...)
		dst = append(dst, serial...)
	}
	return dst
}

// parseSnapshot decodes appendSnapshot's encoding.
func parseSnapshot(snap []byte) (map[string]uint64, map[string]bool, error) {
	bad := fmt.Errorf("%w: checkpoint serial snapshot undecodable", ErrStateCorrupt)
	rd := bytes.NewReader(snap)
	readStr := func() (string, bool) {
		var u16 [2]byte
		if _, err := rd.Read(u16[:]); err != nil {
			return "", false
		}
		buf := make([]byte, binary.BigEndian.Uint16(u16[:]))
		if _, err := rd.Read(buf); err != nil && len(buf) > 0 {
			return "", false
		}
		return string(buf), true
	}
	var u32 [4]byte
	if _, err := rd.Read(u32[:]); err != nil {
		return nil, nil, bad
	}
	issuance := make(map[string]uint64)
	for i := uint32(0); i < binary.BigEndian.Uint32(u32[:]); i++ {
		serial, ok := readStr()
		if !ok {
			return nil, nil, bad
		}
		var u64 [8]byte
		if _, err := rd.Read(u64[:]); err != nil {
			return nil, nil, bad
		}
		issuance[serial] = binary.BigEndian.Uint64(u64[:])
	}
	if _, err := rd.Read(u32[:]); err != nil {
		return nil, nil, bad
	}
	revoked := make(map[string]bool)
	for i := uint32(0); i < binary.BigEndian.Uint32(u32[:]); i++ {
		serial, ok := readStr()
		if !ok {
			return nil, nil, bad
		}
		revoked[serial] = true
	}
	if rd.Len() != 0 {
		return nil, nil, bad
	}
	return issuance, revoked, nil
}

// foldBlocks folds decomposition roots (largest first) into MTH(D[0:n]):
// root([0,n)) = H(B1, root(rest)).
func foldBlocks(blocks []Hash) Hash {
	r := blocks[len(blocks)-1]
	for j := len(blocks) - 2; j >= 0; j-- {
		r = nodeHash(blocks[j], r)
	}
	return r
}

// writeCheckpointFile signs and atomically persists a checkpoint. The
// caller passes state captured under the log lock for an
// already-committed head (sth.Size == size).
func writeCheckpointFile(dir string, ck *checkpoint, signer crypto.Signer, noSync bool) (int, error) {
	hdr, err := json.Marshal(ckptHeader{Size: ck.size, STH: ck.sth, Blocks: ck.blocks, StreamCounts: ck.streamCounts})
	if err != nil {
		return 0, fmt.Errorf("translog: encoding checkpoint: %w", err)
	}
	snap := appendSnapshot(nil, ck.issuance, ck.revoked)
	digest := ckptDigest(hdr, snap)
	sig, err := signer.Sign(rand.Reader, digest[:], crypto.SHA256)
	if err != nil {
		return 0, fmt.Errorf("translog: signing checkpoint: %w", err)
	}
	buf := make([]byte, 0, len(ckptMagic)+12+len(hdr)+len(sig)+len(snap)+4)
	buf = append(buf, ckptMagic[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(hdr)))
	buf = append(buf, u32[:]...)
	buf = append(buf, hdr...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(sig)))
	buf = append(buf, u32[:]...)
	buf = append(buf, sig...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(snap)))
	buf = append(buf, u32[:]...)
	buf = append(buf, snap...)
	binary.BigEndian.PutUint32(u32[:], crc32.Checksum(buf, crcTable))
	buf = append(buf, u32[:]...)
	if err := atomicWriteFile(filepath.Join(dir, checkpointFileName), buf, !noSync); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// loadCheckpoint reads and verifies the store's checkpoint, nil when
// none exists. pub is the log public key. The persisted tree head is
// consulted for the rollback tripwire: a checkpoint claiming a size the
// persisted head does not reach means the statedir was rewound around a
// newer checkpoint.
func loadCheckpoint(dir string, pub *ecdsa.PublicKey) (*checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("translog: reading checkpoint: %w", err)
	}
	if len(data) < len(ckptMagic)+16 || !bytes.Equal(data[:len(ckptMagic)], ckptMagic[:]) {
		return nil, fmt.Errorf("%w: checkpoint file malformed", ErrStateCorrupt)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrStateCorrupt)
	}
	rest := body[len(ckptMagic):]
	next := func() ([]byte, bool) {
		if len(rest) < 4 {
			return nil, false
		}
		n := binary.BigEndian.Uint32(rest[:4])
		if uint64(len(rest)-4) < uint64(n) {
			return nil, false
		}
		sec := rest[4 : 4+n]
		rest = rest[4+n:]
		return sec, true
	}
	hdrBytes, ok1 := next()
	sig, ok2 := next()
	snap, ok3 := next()
	if !ok1 || !ok2 || !ok3 || len(rest) != 0 {
		return nil, fmt.Errorf("%w: checkpoint file malformed", ErrStateCorrupt)
	}
	var hdr ckptHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("%w: checkpoint header undecodable: %v", ErrStateCorrupt, err)
	}
	digest := ckptDigest(hdrBytes, snap)
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return nil, fmt.Errorf("%w: checkpoint signature invalid", ErrStateTampered)
	}
	// The signed contents must be self-consistent: the inner head is a
	// valid head for exactly this size, and the frozen blocks fold to
	// its root. A mismatch under a valid signature cannot happen without
	// the signer's cooperation, but the checks are cheap and keep a
	// buggy writer from silently wedging recovery.
	if err := hdr.STH.Verify(pub); err != nil {
		return nil, fmt.Errorf("%w: checkpoint tree head signature invalid", ErrStateTampered)
	}
	if hdr.STH.Size != hdr.Size || hdr.Size == 0 {
		return nil, fmt.Errorf("%w: checkpoint size %d does not match its tree head (%d)",
			ErrStateTampered, hdr.Size, hdr.STH.Size)
	}
	want := 0
	for n := hdr.Size; n > 0; n &= n - 1 {
		want++
	}
	if len(hdr.Blocks) != want || foldBlocks(hdr.Blocks) != hdr.STH.RootHash {
		return nil, fmt.Errorf("%w: checkpoint frozen blocks do not fold to the signed root", ErrStateTampered)
	}
	issuance, revoked, err := parseSnapshot(snap)
	if err != nil {
		return nil, err
	}
	// Rollback tripwire: a checkpoint can only be written after its head
	// was durably persisted, so a persisted head older than the
	// checkpoint (or no head at all) means the statedir around the
	// checkpoint was rewound.
	sth, have, err := loadSTH(dir)
	if err != nil {
		return nil, err
	}
	if !have {
		return nil, fmt.Errorf("%w: checkpoint present but no persisted tree head", ErrStateTampered)
	}
	if sth.Size < hdr.Size {
		return nil, fmt.Errorf("%w: checkpoint covers %d entries but persisted tree head covers %d",
			ErrStateRollback, hdr.Size, sth.Size)
	}
	return &checkpoint{
		size: hdr.Size, sth: hdr.STH, blocks: hdr.Blocks,
		streamCounts: hdr.StreamCounts, issuance: issuance, revoked: revoked,
	}, nil
}
