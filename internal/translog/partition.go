// Witness partitioning: the audit plane sharded to match the write
// plane. PR 5 gave every host its own WAL stream; this layer gives
// every witness its own slice of those streams. Each shard is audited
// by exactly Q witnesses chosen by a deterministic ring assignment over
// the sorted witness roster, so per-witness audit cost is proportional
// to Q·S/N shards — flat as the fleet grows with hosts, witnesses and
// shards scaling together — while every shard still has Q independent
// auditors whose co-signatures (cosign.go) make the merged head
// trustworthy without any single witness being a bottleneck.
package translog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"vnfguard/internal/statedir"
)

// ErrPartitionInvalid reports an unsatisfiable partition shape: no
// witnesses, a non-positive shard count, or a quorum larger than the
// witness set.
var ErrPartitionInvalid = errors.New("translog: invalid witness partition") //lint:allow unusedexport config error contract of exported partition/roster constructors; errors.Is target

// WitnessPartition is the deterministic assignment of shard streams to
// witnesses. The assignment is a pure function of (shards, sorted
// witness names, quorum): shard s is audited by the Q witnesses at ring
// positions (s+k) mod N for k in [0, Q). Every restart, every witness
// and the log server all derive the identical assignment from the
// pinned store shard count and the pinned roster — there is no
// coordination step to get wrong, and FuzzWitnessPartition pins the
// determinism and the ≥Q coverage of every shard.
type WitnessPartition struct {
	shards int
	quorum int
	names  []string         // sorted, deduplicated ring order
	byName map[string][]int // witness -> sorted assigned shards
}

// NewWitnessPartition builds the assignment for the given shard count,
// witness names (order and duplicates are irrelevant — the ring is the
// sorted deduplicated set) and per-shard quorum Q.
func NewWitnessPartition(shards int, witnesses []string, quorum int) (*WitnessPartition, error) {
	names := append([]string(nil), witnesses...)
	sort.Strings(names)
	names = dedupeSorted(names)
	switch {
	case shards < 1:
		return nil, fmt.Errorf("%w: shard count %d", ErrPartitionInvalid, shards)
	case len(names) == 0:
		return nil, fmt.Errorf("%w: empty witness set", ErrPartitionInvalid)
	case quorum < 1 || quorum > len(names):
		return nil, fmt.Errorf("%w: quorum %d over %d witnesses", ErrPartitionInvalid, quorum, len(names))
	}
	p := &WitnessPartition{shards: shards, quorum: quorum, names: names, byName: make(map[string][]int, len(names))}
	for s := 0; s < shards; s++ {
		for k := 0; k < quorum; k++ {
			name := names[(s+k)%len(names)]
			p.byName[name] = append(p.byName[name], s)
		}
	}
	for _, assigned := range p.byName {
		sort.Ints(assigned)
	}
	return p, nil
}

// dedupeSorted removes adjacent duplicates from a sorted slice.
func dedupeSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// Shards returns the partitioned shard count.
func (p *WitnessPartition) Shards() int { return p.shards }

// Quorum returns the per-shard auditor count Q.
func (p *WitnessPartition) Quorum() int { return p.quorum }

// Names returns the sorted witness ring.
func (p *WitnessPartition) Names() []string { return append([]string(nil), p.names...) }

// AssignedShards returns the sorted shard list witness name audits, or
// nil for a name outside the partition.
func (p *WitnessPartition) AssignedShards(name string) []int {
	return append([]int(nil), p.byName[name]...)
}

// WitnessesFor returns the Q witnesses assigned to audit shard s.
func (p *WitnessPartition) WitnessesFor(shard int) []string {
	if shard < 0 || shard >= p.shards {
		return nil
	}
	out := make([]string, 0, p.quorum)
	for k := 0; k < p.quorum; k++ {
		out = append(out, p.names[(shard+k)%len(p.names)])
	}
	sort.Strings(out)
	return out
}

// Covers reports whether witness name is assigned shard s.
func (p *WitnessPartition) Covers(name string, shard int) bool {
	for _, s := range p.byName[name] {
		if s == shard {
			return true
		}
	}
	return false
}

// CoversHost reports whether witness name audits the shard stream host
// routes to (ShardOf under the partition's shard count).
func (p *WitnessPartition) CoversHost(name, host string) bool {
	return p.Covers(name, ShardOf(host, p.shards))
}

// ---- pinned deployment configuration --------------------------------------

// partitionConfigFile is the statedir entry pinning a deployment's
// partition parameters, written once by the log server so every witness
// (and every witness restart) derives the same assignment.
const partitionConfigFile = "witness-partition.json"

// PartitionConfig is the pinned partition shape a deployment shares
// through its statedir: the store's shard count, the co-signing quorum
// and the full witness roster the ring is built over.
type PartitionConfig struct {
	Shards    int      `json:"shards"`
	Quorum    int      `json:"quorum"`
	Witnesses []string `json:"witnesses"`
}

// Partition builds the deterministic assignment the config pins.
func (c PartitionConfig) Partition() (*WitnessPartition, error) {
	return NewWitnessPartition(c.Shards, c.Witnesses, c.Quorum)
}

// SavePartitionConfig pins the partition parameters into the statedir.
func SavePartitionConfig(dir *statedir.Dir, cfg PartitionConfig) error {
	if _, err := cfg.Partition(); err != nil {
		return err
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	return dir.Write(partitionConfigFile, data)
}

// LoadPartitionConfig reads the pinned partition parameters. A missing
// file surfaces os.ErrNotExist through the wrap — an unpartitioned
// deployment, not an error state.
func LoadPartitionConfig(dir *statedir.Dir) (PartitionConfig, error) {
	var cfg PartitionConfig
	data, err := dir.Read(partitionConfigFile)
	if err != nil {
		return cfg, fmt.Errorf("translog: reading pinned witness partition: %w", err)
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("%w: pinned witness partition undecodable: %v", ErrPartitionInvalid, err)
	}
	if _, err := cfg.Partition(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
