package translog

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vnfguard/internal/obs"
)

// Errors.
var (
	ErrNotLogged  = errors.New("translog: no log entry for credential") //lint:allow unusedexport lookup error contract of exported Log methods; errors.Is target
	ErrBadSTH     = errors.New("translog: tree head signature invalid") //lint:allow unusedexport verification error contract of exported Log/Client methods; errors.Is target
	ErrLogRevoked = errors.New("translog: credential revoked in log")
	ErrIndexRange = errors.New("translog: entry index out of range") //lint:allow unusedexport proof-request error contract of exported Log methods; errors.Is target
	ErrClosedLog  = errors.New("translog: appender closed")          //lint:allow unusedexport append error contract of exported Appender methods; errors.Is target
)

// SignedTreeHead is the log's signed commitment to its state at one size:
// whoever holds two of these can demand a consistency proof between them.
type SignedTreeHead struct {
	Size      uint64 `json:"size"`
	RootHash  Hash   `json:"root_hash"`
	Timestamp int64  `json:"timestamp"` // Unix milliseconds
	// Signature is an ASN.1 ECDSA signature by the log key (the VM's CA
	// key) over the canonical tree-head encoding.
	Signature []byte `json:"signature"`
}

// sthSigPrefix domain-separates tree-head signatures from every other use
// of the CA key.
const sthSigPrefix = "vnfguard-translog-sth-v1"

// entryArena is the Log's committed-entry storage: the canonical
// encodings concatenated in one byte arena plus a start-offset index.
// Entries decode on read. Compared to a []Entry, the arena is
// pointer-free — a multi-million-entry log no longer hands the garbage
// collector millions of string headers to scan on every cycle, which
// directly feeds the append throughput the sharded sequencer is built
// for — and it holds the exact bytes the tree hashed, so a decode can
// never disagree with the leaf.
type entryArena struct {
	// base is the global index of the first resident entry: a
	// checkpointed open adopts only the WAL suffix, and indices below
	// base stay cold until a read forces hydration (Log.hydrate), which
	// splices the archived prefix back in and zeroes base.
	base uint64
	data []byte
	offs []uint64
}

// count returns the number of stored entries (cold prefix included).
func (a *entryArena) count() uint64 { return a.base + uint64(len(a.offs)) }

// add appends one canonical encoding (copying it out of the caller's
// buffer).
func (a *entryArena) add(payload []byte) {
	a.offs = append(a.offs, uint64(len(a.data)))
	a.data = append(a.data, payload...)
}

// payload returns the stored canonical encoding of entry i (callers
// have checked base ≤ i < count).
func (a *entryArena) payload(i uint64) []byte {
	i -= a.base
	end := uint64(len(a.data))
	if i+1 < uint64(len(a.offs)) {
		end = a.offs[i+1]
	}
	return a.data[a.offs[i]:end]
}

// at decodes entry i. The arena only ever holds encodings produced by
// Entry.Marshal or validated by recovery, so a decode failure is a
// programming error, not a runtime condition.
func (a *entryArena) at(i uint64) Entry {
	e, err := unmarshalEntry(a.payload(i))
	if err != nil {
		panic("translog: stored entry undecodable: " + err.Error())
	}
	return e
}

// truncate discards entries from global index n on — the rollback of a
// failed commit (always within the resident suffix: commits only ever
// grow past base).
func (a *entryArena) truncate(n uint64) {
	if n >= a.count() {
		return
	}
	n -= a.base
	a.data = a.data[:a.offs[n]]
	a.offs = a.offs[:n]
}

// splice prepends the hydrated cold payloads (global indices
// [0, base)) and makes the arena fully resident.
func (a *entryArena) splice(cold [][]byte) {
	sz := uint64(0)
	for _, p := range cold {
		sz += uint64(len(p))
	}
	data := make([]byte, 0, sz+uint64(len(a.data)))
	offs := make([]uint64, 0, len(cold)+len(a.offs))
	for _, p := range cold {
		offs = append(offs, uint64(len(data)))
		data = append(data, p...)
	}
	for _, off := range a.offs {
		offs = append(offs, off+sz)
	}
	a.data = append(data, a.data...)
	a.offs = offs
	a.base = 0
}

// signingDigest is the SHA-256 the STH signature covers.
func (sth SignedTreeHead) signingDigest() [sha256.Size]byte {
	buf := make([]byte, 0, len(sthSigPrefix)+8+sha256.Size+8)
	buf = append(buf, sthSigPrefix...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], sth.Size)
	buf = append(buf, u64[:]...)
	buf = append(buf, sth.RootHash[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(sth.Timestamp))
	buf = append(buf, u64[:]...)
	return sha256.Sum256(buf)
}

// Verify checks the tree-head signature against the log's public key.
func (sth SignedTreeHead) Verify(pub *ecdsa.PublicKey) error {
	digest := sth.signingDigest()
	if !ecdsa.VerifyASN1(pub, digest[:], sth.Signature) {
		return ErrBadSTH
	}
	return nil
}

// Log is the append-only transparency log. All mutation is funnelled
// through commit, which recomputes the root and signs a fresh tree head
// once per batch — the cost that the batched appender amortises.
type Log struct {
	signer crypto.Signer

	// store, when non-nil, durably persists every committed batch before
	// it becomes visible (see OpenDurableLog). NewLog leaves it nil: a
	// purely in-memory log.
	store *Store

	mu      sync.RWMutex
	entries entryArena
	tree    *tree
	sth     SignedTreeHead
	// issuance maps a credential serial to the index of its latest
	// issuance entry (enroll or provision), maintained on commit exactly
	// like revoked — so a proof lookup is one map read plus the audit
	// path, never a scan over the serial's history.
	issuance map[string]uint64
	// revoked marks serials with an EntryRevoke in the log.
	revoked map[string]bool
	// shardScratch is the reusable host→shard routing buffer for sharded
	// stores, guarded by mu like every commit-path structure.
	shardScratch []int
	// shardStreams/shardIdx, when enabled (EnableShardStreams), maintain
	// the per-shard view of the committed sequence: shardIdx[s] lists the
	// global indices of shard s's entries in commit order — what the
	// partitioned witness audit reads so a witness assigned shard s never
	// scans the other shards' entries. Guarded by mu.
	shardStreams int
	shardIdx     [][]uint64

	// frozenRoot is the checkpoint's root over the cold prefix — what a
	// lazy hydration of the archived entries must reproduce
	// (ErrStateTampered otherwise). Only meaningful while entries.base
	// is non-zero.
	frozenRoot Hash
	// hydrateMu single-flights cold-prefix hydration.
	hydrateMu sync.Mutex
	// ckptMu serialises checkpoint writes (the background writer against
	// explicit Checkpoint calls).
	ckptMu sync.Mutex
	// ckptBusy/ckptWG coordinate the background checkpoint goroutine:
	// at most one in flight, and Close waits it out before tearing the
	// store down.
	ckptBusy atomic.Bool
	ckptWG   sync.WaitGroup

	// committed is the size covered by the latest acknowledged commit —
	// what tile serving may expose. An atomic, not l.mu: the tile read
	// path must never wait on a commit holding the lock across an fsync.
	committed atomic.Uint64
	// tileMark is the committed size the background tile publisher has
	// covered (mirrored in the statedir tiles/published file).
	tileMark atomic.Uint64
	// tileBusy/tileWG coordinate the background tile publisher exactly
	// as ckptBusy/ckptWG do the checkpoint writer.
	tileBusy atomic.Bool
	tileWG   sync.WaitGroup
}

// NewLog creates a log whose tree heads are signed by signer (the
// Verification Manager passes its CA key). The empty tree head is signed
// immediately so monitors can anchor from size zero.
func NewLog(signer crypto.Signer) (*Log, error) {
	l := &Log{
		signer:   signer,
		tree:     newTree(),
		issuance: make(map[string]uint64),
		revoked:  make(map[string]bool),
	}
	sth, err := l.signHead(0, emptyRoot())
	if err != nil {
		return nil, err
	}
	l.sth = sth
	return l, nil
}

func (l *Log) signHead(size uint64, root Hash) (SignedTreeHead, error) {
	sth := SignedTreeHead{Size: size, RootHash: root, Timestamp: time.Now().UnixMilli()}
	digest := sth.signingDigest()
	sig, err := l.signer.Sign(rand.Reader, digest[:], crypto.SHA256)
	if err != nil {
		return SignedTreeHead{}, fmt.Errorf("translog: signing tree head: %w", err)
	}
	sth.Signature = sig
	return sth, nil
}

// Append commits one entry immediately (one root recomputation and one
// tree-head signature) and returns its index. Hot paths should prefer an
// Appender, which batches these costs.
func (l *Log) Append(e Entry) (uint64, error) {
	indices, err := l.AppendBatch([]Entry{e})
	if err != nil {
		return 0, err
	}
	return indices[0], nil
}

// AppendBatch commits a batch of entries under a single root recomputation
// and tree-head signature, returning their indices.
func (l *Log) AppendBatch(batch []Entry) ([]uint64, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	payloads, hashes := prepareEntries(batch, 1)
	first, err := l.appendPrepared(batch, payloads, hashes)
	if err != nil {
		return nil, err
	}
	indices := make([]uint64, len(batch))
	for i := range indices {
		indices[i] = first + uint64(i)
	}
	return indices, nil
}

// appendPrepared commits entries whose canonical encodings and leaf
// hashes were computed by the caller — the merging sequencer prepares
// its large merged cycles on every core before funnelling them through
// the log lock here. Returns the first committed index; the batch
// occupies [first, first+len(batch)).
func (l *Log) appendPrepared(batch []Entry, payloads [][]byte, hashes []Hash) (uint64, error) {
	return l.appendPreparedTraced(batch, payloads, hashes, nil)
}

// appendPreparedTraced is appendPrepared with an optional per-cycle
// trace (the sequencer threads its cycle record through; ordinary
// batches pass nil). The phase histograms are observed either way.
func (l *Log) appendPreparedTraced(batch []Entry, payloads [][]byte, hashes []Hash, tr *obs.CycleTrace) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	first := l.entries.count()
	for _, p := range payloads {
		l.entries.add(p)
	}
	phase := time.Now()
	size := l.tree.appendParallel(hashes, prepareWorkers())
	// The commit must be atomic: a failure after the tree grew would
	// leave entries that a later head signs over but the serial indexes
	// never saw — so roll the tree and entry list back on any error.
	rollback := func() {
		l.entries.truncate(first)
		l.tree.truncate(first)
	}
	root, err := l.tree.rootAt(size)
	if err != nil {
		rollback()
		return 0, err
	}
	merkle := time.Since(phase)
	mPhaseMerkle.Observe(merkle)
	phase = time.Now()
	sth, err := l.signHead(size, root)
	if err != nil {
		rollback()
		return 0, err
	}
	sign := time.Since(phase)
	mPhaseSign.Observe(sign)
	if tr != nil {
		tr.TreeHash, tr.Sign = merkle, sign
	}
	if l.store != nil {
		// A sharded store routes each record to its host's segment
		// stream; the global index travels inside the record, assigned
		// here under the same lock that orders the commits. The scratch
		// is protected by that lock too.
		var shardIdx []int
		if n := l.store.shardCount(); n > 1 {
			if cap(l.shardScratch) < len(batch) {
				l.shardScratch = make([]int, len(batch))
			}
			shardIdx = l.shardScratch[:len(batch)]
			for i, e := range batch {
				shardIdx[i] = ShardOf(e.Host, n)
			}
		}
		// Durability before visibility: the batch's records hit disk
		// (fsynced) and the new head is atomically persisted before any
		// reader can obtain a proof against it. A failed persist rolls
		// the in-memory state back and latches the store failed, so the
		// log never acknowledges an entry the disk may not hold.
		if err := l.store.appendBatch(payloads, shardIdx, sth, tr); err != nil {
			rollback()
			return 0, err
		}
	}
	l.sth = sth
	l.committed.Store(size)
	for i, e := range batch {
		l.indexEntry(e, first+uint64(i))
	}
	mCommits.Inc()
	mAppendedEntries.Add(uint64(len(batch)))
	mLastCommit.Mark()
	// Checkpoint trigger: the batch is committed through the whole
	// anchor chain, so this head is one every anchor will remember —
	// exactly what a checkpoint may cover. The writer runs off the
	// commit path; at most one in flight.
	if l.store != nil && l.store.checkpointDue(size) && l.ckptBusy.CompareAndSwap(false, true) {
		l.ckptWG.Add(1)
		go l.checkpointAndCompact()
	}
	// Tile publication trigger, same off-commit-path shape: once a
	// commit completes a fresh full tile, persist it so tile serving is
	// a file read by the time caches ask.
	if l.store != nil && l.tilesDue(size) && l.tileBusy.CompareAndSwap(false, true) {
		l.tileWG.Add(1)
		go l.publishTilesBG()
	}
	return first, nil
}

// checkpointAndCompact is the background checkpoint writer spawned
// after a commit crosses the configured interval: persist a checkpoint
// for the committed head, then fold the now-summarized cold prefix
// into archive files. Best-effort by design — on any error the WAL
// remains authoritative and the next interval retries.
func (l *Log) checkpointAndCompact() {
	defer l.ckptWG.Done()
	defer l.ckptBusy.Store(false)
	if err := l.Checkpoint(); err != nil {
		return
	}
	_ = l.store.compact(l.store.lastCkpt.Load())
}

// Checkpoint synchronously writes a durable checkpoint covering the
// current committed head and compacts the cold prefix it summarizes
// into archive files. The automatic path (StoreConfig.CheckpointEvery)
// runs this in the background after commits; the method is exposed for
// operator tooling and deterministic tests.
func (l *Log) Checkpoint() error {
	if l.store == nil {
		return fmt.Errorf("translog: checkpointing an in-memory log")
	}
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	l.mu.RLock()
	sth := l.sth
	size := l.entries.count()
	blocks, err := l.tree.blocks(size)
	if err != nil {
		l.mu.RUnlock()
		return err
	}
	issuance := make(map[string]uint64, len(l.issuance))
	for k, v := range l.issuance {
		issuance[k] = v
	}
	revoked := make(map[string]bool, len(l.revoked))
	for k := range l.revoked {
		revoked[k] = true
	}
	streamCounts := l.store.streamCounts()
	l.mu.RUnlock()
	if size == 0 || size == l.store.lastCkpt.Load() {
		return nil // nothing new to summarize
	}
	ck := &checkpoint{size: size, sth: sth, blocks: blocks,
		streamCounts: streamCounts, issuance: issuance, revoked: revoked}
	n, err := writeCheckpointFile(l.store.dir, ck, l.signer, l.store.cfg.NoSync)
	if err != nil {
		return err
	}
	l.store.lastCkpt.Store(size)
	mCkptBytes.Set(int64(n))
	mCkptLast.Mark()
	return l.store.compact(size)
}

// hydrate loads the compacted cold prefix back into memory: the
// archives (plus any cold records still in WAL segments) are read, the
// prefix tree is rebuilt and must reproduce the checkpoint root the
// anchors verified at open, and the tree and entry arena are spliced
// back to full residency. Single-flighted; concurrent cold readers
// block on hydrateMu and find the work already done.
func (l *Log) hydrate() error {
	l.hydrateMu.Lock()
	defer l.hydrateMu.Unlock()
	l.mu.RLock()
	base := l.entries.base
	frozen := l.frozenRoot
	store := l.store
	l.mu.RUnlock()
	if base == 0 {
		return nil // already resident
	}
	payloads, hashes, err := store.loadCold(base)
	if err != nil {
		return err
	}
	pre := newTree()
	pre.appendParallel(hashes, prepareWorkers())
	root, err := pre.rootAt(base)
	if err != nil {
		return err
	}
	if root != frozen {
		return fmt.Errorf("%w: hydrated cold prefix hashes to a different root than the checkpoint covers",
			ErrStateTampered)
	}
	l.mu.Lock()
	l.tree.splice(pre.levels)
	l.entries.splice(payloads)
	l.mu.Unlock()
	return nil
}

// withHydration runs fn, hydrating the cold prefix and retrying once
// when it reports a cold range. After a successful hydration the tree
// and arena are fully resident, so the retry cannot see errColdRange
// again.
func (l *Log) withHydration(fn func() error) error {
	err := fn()
	if !errors.Is(err, errColdRange) {
		return err
	}
	if herr := l.hydrate(); herr != nil {
		return herr
	}
	return fn()
}

// indexEntry maintains the serial-keyed lookup maps for one committed
// entry. Callers hold l.mu (or own the log exclusively during recovery).
func (l *Log) indexEntry(e Entry, idx uint64) {
	if l.shardStreams > 0 {
		s := ShardOf(e.Host, l.shardStreams)
		l.shardIdx[s] = append(l.shardIdx[s], idx)
	}
	if e.Serial == "" {
		return
	}
	switch e.Type {
	case EntryEnroll, EntryProvision:
		l.issuance[e.Serial] = idx
	case EntryRevoke:
		l.revoked[e.Serial] = true
	}
}

// Durable reports whether the log persists its state (OpenDurableLog).
func (l *Log) Durable() bool { return l.store != nil }

// StoreShards reports the durable store's per-host stream count — the
// count pinned at store creation, whatever StoreConfig.Shards said at
// this open. Zero for in-memory and single-stream logs.
func (l *Log) StoreShards() int {
	if l.store == nil {
		return 0
	}
	return l.store.shardCount()
}

// Close releases the durable store, fsyncing the tail segment. It is a
// no-op for in-memory logs and is safe to call more than once.
func (l *Log) Close() error {
	// Wait out any in-flight background checkpoint or tile publisher
	// before locking (the writers snapshot under the read lock / the
	// tree's own lock). A commit racing this Close may spawn a fresh
	// writer after the Wait, so re-check under the lock — new writers
	// can only be spawned by commits, which hold it.
	for {
		l.ckptWG.Wait()
		l.tileWG.Wait()
		l.mu.Lock()
		if !l.ckptBusy.Load() && !l.tileBusy.Load() {
			break
		}
		l.mu.Unlock()
	}
	defer l.mu.Unlock()
	if l.store == nil {
		return nil
	}
	return l.store.Close()
}

// STH returns the latest signed tree head.
func (l *Log) STH() SignedTreeHead {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sth
}

// Size returns the committed entry count.
func (l *Log) Size() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.entries.count()
}

// Entry returns the committed entry at index.
func (l *Log) Entry(index uint64) (Entry, error) {
	var e Entry
	err := l.withHydration(func() error {
		l.mu.RLock()
		defer l.mu.RUnlock()
		if index >= l.entries.count() {
			return ErrIndexRange
		}
		if index < l.entries.base {
			return errColdRange
		}
		e = l.entries.at(index)
		return nil
	})
	if err != nil {
		return Entry{}, err
	}
	return e, nil
}

// Entries returns committed entries in [start, start+count), clamped to
// the log size.
func (l *Log) Entries(start, count uint64) []Entry {
	var out []Entry
	_ = l.withHydration(func() error {
		l.mu.RLock()
		defer l.mu.RUnlock()
		n := l.entries.count()
		if start >= n || count == 0 {
			return nil
		}
		if start < l.entries.base {
			return errColdRange
		}
		end := n
		if count < n-start {
			end = start + count
		}
		out = make([]Entry, 0, end-start)
		for i := start; i < end; i++ {
			out = append(out, l.entries.at(i))
		}
		return nil
	})
	return out
}

// InclusionProof returns the audit path for the entry at index in the
// tree of the given size.
//
// Proofs deliberately do not take the log lock: the tree is append-only
// and guards its own node levels, and every node below a committed size
// is immutable once written — so proof reads over published heads no
// longer contend with the sequencer's write lock, which a committing
// batch holds across its WAL fsync. A proof touching hashes that were
// compacted below the checkpoint triggers hydration and retries.
func (l *Log) InclusionProof(index, size uint64) ([]Hash, error) {
	var proof []Hash
	err := l.withHydration(func() error {
		var ferr error
		proof, ferr = l.tree.inclusionProof(index, size)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return proof, nil
}

// ConsistencyProof proves the tree at size first is a prefix of the tree
// at size second. Lock-free against the log lock like InclusionProof.
func (l *Log) ConsistencyProof(first, second uint64) ([]Hash, error) {
	if first == 0 {
		return nil, nil
	}
	var proof []Hash
	err := l.withHydration(func() error {
		var ferr error
		proof, ferr = l.tree.consistencyProof(first, second)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return proof, nil
}

// RootAt recomputes the root at a historical size (used by tests and the
// example walkthrough; auditors use signed tree heads instead).
func (l *Log) RootAt(size uint64) (Hash, error) {
	var root Hash
	err := l.withHydration(func() error {
		var ferr error
		root, ferr = l.tree.rootAt(size)
		return ferr
	})
	return root, err
}

// ProofBundle packages everything a relying party needs to check that one
// entry is committed in the log: the entry, its index, the audit path and
// the signed tree head the path leads to.
type ProofBundle struct {
	Index uint64         `json:"index"`
	Entry Entry          `json:"entry"`
	Proof []Hash         `json:"proof"`
	STH   SignedTreeHead `json:"sth"`
}

// Verify checks the bundle end to end: tree-head signature, then the
// inclusion of the entry's leaf under that head.
func (pb *ProofBundle) Verify(pub *ecdsa.PublicKey) error {
	if err := pb.STH.Verify(pub); err != nil {
		return err
	}
	return VerifyInclusion(LeafHash(pb.Entry.Marshal()), pb.Index, pb.STH.Size, pb.Proof, pb.STH.RootHash)
}

// ProveSerial returns a proof bundle for the latest issuance entry
// (enroll or provision) carrying the given credential serial, against the
// current tree head. ErrNotLogged when the serial never appears;
// ErrLogRevoked when the log records its revocation. The lookup is one
// map read — the issuance index is maintained on commit (and rebuilt on
// recovery) rather than found by scanning entries, so the controller's
// per-handshake cost does not grow with the log.
func (l *Log) ProveSerial(serial string) (*ProofBundle, error) {
	pb, err := l.lookupBundle(serial)
	if err != nil {
		return nil, err
	}
	// The audit path is computed against the snapshotted head without
	// re-taking the log lock (see InclusionProof).
	err = l.withHydration(func() error {
		proof, perr := l.tree.inclusionProof(pb.Index, pb.STH.Size)
		if perr != nil {
			return perr
		}
		pb.Proof = proof
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pb, nil
}

// lookupBundle resolves a serial to its proof bundle minus the audit
// path — what a tile-assembling client needs: it computes the proof
// itself from cached tiles, so making the server hash one out would
// defeat the point of the tile read path.
func (l *Log) lookupBundle(serial string) (*ProofBundle, error) {
	l.mu.RLock()
	if l.revoked[serial] {
		l.mu.RUnlock()
		return nil, ErrLogRevoked
	}
	idx, ok := l.issuance[serial]
	sth := l.sth
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: serial %s", ErrNotLogged, serial)
	}
	var e Entry
	err := l.withHydration(func() error {
		l.mu.RLock()
		defer l.mu.RUnlock()
		if idx < l.entries.base {
			return errColdRange
		}
		e = l.entries.at(idx)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ProofBundle{Index: idx, Entry: e, STH: sth}, nil
}

// SerialRevoked reports whether the log holds an EntryRevoke for serial.
func (l *Log) SerialRevoked(serial string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.revoked[serial]
}

// Appender buffers entries and commits them to the log in batches, so
// producers on the hot attestation path pay only a mutex and a slice
// append — hashing and tree-head signing happen once per batch on a
// background goroutine. On a durable log (OpenDurableLog) the same
// batching amortises the fsyncs: each committed batch is one segment
// fsync plus one atomic tree-head replacement, regardless of batch size.
type Appender struct {
	log *Log

	maxBatch int
	interval time.Duration

	mu      sync.Mutex
	pending []Entry
	// committing marks a batch handed to the log but not yet committed;
	// Flush must wait it out, not only the buffer drain.
	committing bool
	closed     bool
	err        error
	idle       *sync.Cond // broadcast whenever pending drains

	kick chan struct{}
	done chan struct{}
}

// AppenderConfig tunes batching.
type AppenderConfig struct {
	// MaxBatch commits as soon as this many entries are buffered
	// (default 256).
	MaxBatch int
	// FlushInterval bounds how long a buffered entry waits for a batch to
	// fill (default 5ms).
	FlushInterval time.Duration
}

// NewAppender starts a batched appender for log.
func NewAppender(log *Log, cfg AppenderConfig) *Appender {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	a := &Appender{
		log:      log,
		maxBatch: cfg.MaxBatch,
		interval: cfg.FlushInterval,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	a.idle = sync.NewCond(&a.mu)
	go a.loop()
	return a
}

// Append buffers one entry for asynchronous commitment. It never blocks
// on hashing or signing.
func (a *Appender) Append(e Entry) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosedLog
	}
	a.pending = append(a.pending, e)
	full := len(a.pending) >= a.maxBatch
	a.mu.Unlock()
	if full {
		select {
		case a.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Flush blocks until every entry buffered before the call is committed,
// returning the first commit error if any batch failed.
func (a *Appender) Flush() error {
	select {
	case a.kick <- struct{}{}:
	default:
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Wait out the buffer AND any in-flight commit, even when the
	// appender is closing: Close's final commit drains pending and
	// broadcasts, so this cannot hang — but returning early on closed
	// would let a Flush racing Close report nil before the last batch
	// (and its error) lands.
	for len(a.pending) > 0 || a.committing {
		a.idle.Wait()
	}
	return a.err
}

// Close flushes and stops the background goroutine.
func (a *Appender) Close() error {
	err := a.Flush()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return err
	}
	a.closed = true
	a.mu.Unlock()
	close(a.done)
	return err
}

func (a *Appender) loop() {
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			a.commit()
			return
		case <-a.kick:
			a.commit()
		case <-ticker.C:
			a.commit()
		}
	}
}

// commit drains the buffer in MaxBatch-bounded chunks, each committed
// (hashed and tree-head-signed) as one batch.
func (a *Appender) commit() {
	for {
		a.mu.Lock()
		if len(a.pending) == 0 {
			a.idle.Broadcast()
			a.mu.Unlock()
			return
		}
		n := len(a.pending)
		if n > a.maxBatch {
			n = a.maxBatch
		}
		batch := a.pending[:n:n]
		a.pending = a.pending[n:]
		a.committing = true
		a.mu.Unlock()
		_, err := a.log.AppendBatch(batch)
		a.mu.Lock()
		a.committing = false
		if err != nil && a.err == nil {
			a.err = err
		}
		a.idle.Broadcast()
		a.mu.Unlock()
	}
}
