package translog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Tile-based proof serving (the CT "static log" design): the tree's
// interior levels are cut into fixed-width tiles of 2^TileHeight node
// hashes. A full tile is immutable forever — the tree is append-only,
// so once the 256 nodes a tile names exist, no commit can ever change
// them — which makes (level, index) a content address: the same
// coordinates always serve the same bytes, cacheable for a year by any
// HTTP front end or client LRU. Proofs then become client-assembled
// from cacheable tile fetches, and the live tree only answers for the
// growing right edge (partial tiles) — proof traffic stops riding the
// structure the sequencer commits into.
//
// Tile (L, K) holds the node hashes at tree level L·TileHeight with
// global indices [K·TileWidth, (K+1)·TileWidth). It is full when the
// tree has grown all TileWidth of them; the right edge of each level is
// a partial tile, addressed with its explicit width so every (L, K, w)
// URL still names immutable content (append-only levels never rewrite
// a node), just short-lived in caches because clients soon want wider.
//
// On a durable log, full tiles are persisted into <dir>/tiles/ by a
// background publisher that runs off the commit path (like the
// checkpoint writer), so serving a frozen-range tile is one file read:
// no tree access, no hashing, no log lock — pinned by
// TestTileServingTakesNoCommitLockAndHashesNothing and the lockscope
// lint rule. The files are a rebuildable cache, not trust state (a
// served tile is only believed through the proofs it assembles into,
// verified against a signed head), so they are written without fsync
// and a damaged file is simply rebuilt from the tree or the hydrated
// .arc archives.

const (
	// TileHeight is the number of tree levels one tile level spans.
	TileHeight = 8 //lint:allow unusedexport README-documented tile geometry; external auditors need it to address tiles
	// TileWidth is the number of node hashes in a full tile.
	TileWidth = 1 << TileHeight //lint:allow unusedexport README-documented tile geometry; external auditors need it to address tiles
	// maxTileLevel bounds the tile-level coordinate: level 7 tiles cover
	// 2^56-leaf subtrees, enough for any tree a uint64 size can name.
	maxTileLevel = 7
)

// ErrTileRange reports a tile request beyond the committed tree (or with
// impossible coordinates). The HTTP layer maps it to 404 so front caches
// never memorise a right edge that does not exist yet.
var ErrTileRange = errors.New("translog: tile out of committed range") //lint:allow unusedexport tile-request error contract of exported Log/Client.Tile; errors.Is target

// Tile is one subtree tile: Hashes are the node hashes at tree level
// Level·TileHeight, global indices [Index·TileWidth, Index·TileWidth +
// len(Hashes)).
type Tile struct {
	Level  uint64
	Index  uint64
	Hashes []Hash
}

// Width returns the number of hashes the tile carries (TileWidth for a
// full tile).
func (t *Tile) Width() int { return len(t.Hashes) }

// tileMagic identifies the tile wire/file framing (and its version),
// following the checkpoint.bin / .arc conventions.
var tileMagic = [8]byte{'V', 'N', 'F', 'G', 'T', 'I', 'L', '1'}

// encodeTile renders the checksummed framing: magic ‖ level(8) ‖
// index(8) ‖ width(4) ‖ hashes ‖ CRC-32C. The encoding is fully
// deterministic — same tree, same coordinates, byte-identical output —
// which is what content-addressing and the immutable cache headers
// depend on (pinned by FuzzTileDeterminism).
func encodeTile(t *Tile) []byte {
	buf := make([]byte, 0, len(tileMagic)+20+len(t.Hashes)*len(Hash{})+4)
	buf = append(buf, tileMagic[:]...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], t.Level)
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], t.Index)
	buf = append(buf, u64[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(t.Hashes)))
	buf = append(buf, u32[:]...)
	for _, h := range t.Hashes {
		buf = append(buf, h[:]...)
	}
	binary.BigEndian.PutUint32(u32[:], crc32.Checksum(buf, crcTable))
	return append(buf, u32[:]...)
}

// decodeTile parses and checksum-verifies one encoded tile.
func decodeTile(data []byte) (*Tile, error) {
	if len(data) < len(tileMagic)+24 || !bytes.Equal(data[:len(tileMagic)], tileMagic[:]) {
		return nil, fmt.Errorf("translog: tile malformed")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("translog: tile checksum mismatch")
	}
	rest := body[len(tileMagic):]
	t := &Tile{
		Level: binary.BigEndian.Uint64(rest[:8]),
		Index: binary.BigEndian.Uint64(rest[8:16]),
	}
	width := binary.BigEndian.Uint32(rest[16:20])
	rest = rest[20:]
	if width == 0 || width > TileWidth || uint64(len(rest)) != uint64(width)*uint64(len(Hash{})) {
		return nil, fmt.Errorf("translog: tile width %d disagrees with its payload", width)
	}
	t.Hashes = make([]Hash, width)
	for i := range t.Hashes {
		copy(t.Hashes[i][:], rest[i*len(Hash{}):])
	}
	return t, nil
}

// tileNodeCount returns how many nodes exist at tile level L for a tree
// of n leaves.
func tileNodeCount(n, level uint64) uint64 {
	return n >> (TileHeight * level)
}

// fullTileCount returns how many full tiles exist at tile level L for a
// tree of n leaves.
func fullTileCount(n, level uint64) uint64 {
	return n >> (TileHeight * (level + 1))
}

// Statedir tile cache. Tile files live under <dir>/tiles/ next to the
// WAL segments and archives; the published watermark (the committed
// size the publisher has covered) rides in its own small file so a
// reopened log resumes publishing where it stopped instead of
// re-statting thousands of tiles.

const (
	tilesDirName     = "tiles"
	tileMarkFileName = "published"
)

// tileFileName renders the cache file name for tile (level, index).
func tileFileName(level, index uint64) string {
	return fmt.Sprintf("tile-%d-%020d.til", level, index)
}

func (s *Store) tilePath(level, index uint64) string {
	return filepath.Join(s.dir, tilesDirName, tileFileName(level, index))
}

// readTile loads one full tile from the cache; ok=false on any miss or
// damage (the cache is rebuildable, so a bad file is just a miss).
func (s *Store) readTile(level, index uint64) (*Tile, bool) {
	data, err := os.ReadFile(s.tilePath(level, index))
	if err != nil {
		return nil, false
	}
	t, err := decodeTile(data)
	if err != nil || t.Level != level || t.Index != index || t.Width() != TileWidth {
		return nil, false
	}
	return t, true
}

// writeTile persists one full tile. No fsync: the tiles are a cache
// rebuilt from the tree (or the hydrated archives) on demand, so
// durability buys nothing here and the publisher stays cheap; the
// atomic rename still guarantees readers never see a torn file.
func (s *Store) writeTile(t *Tile) error {
	dir := filepath.Join(s.dir, tilesDirName)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return fmt.Errorf("translog: creating tiles dir: %w", err)
	}
	//lint:allow atomicwrite rebuildable cache: rename atomicity wanted, fsync durability not
	return atomicWriteFile(filepath.Join(dir, tileFileName(t.Level, t.Index)), encodeTile(t), false)
}

// loadTileMark reads the published watermark (0 when none).
func (s *Store) loadTileMark() uint64 {
	data, err := os.ReadFile(filepath.Join(s.dir, tilesDirName, tileMarkFileName))
	if err != nil {
		return 0
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// storeTileMark persists the published watermark (best effort, no
// fsync — a stale mark only costs republishing byte-identical tiles).
func (s *Store) storeTileMark(n uint64) {
	dir := filepath.Join(s.dir, tilesDirName)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return
	}
	//lint:allow atomicwrite rebuildable cache watermark: rename atomicity wanted, fsync durability not
	_ = atomicWriteFile(filepath.Join(dir, tileMarkFileName), []byte(strconv.FormatUint(n, 10)), false)
}

// Tile returns the tile at (level, index), carrying exactly width node
// hashes. Full-tile requests (width == TileWidth) on a durable log are
// served from the statedir tile cache first — one file read, no tree
// access, no hashing, and never the log's commit lock, so tile traffic
// cannot contend with a commit holding that lock across its WAL fsync.
// A miss (or any partial-tile request) extracts the hashes from the
// tree under the tree's own read lock — still zero hashing, every
// interior level is resident — hydrating the cold prefix from the .arc
// archives when the range sits below a checkpoint, and writes full
// tiles back through to the cache. Requests past the committed head
// return ErrTileRange.
func (l *Log) Tile(level, index uint64, width int) (*Tile, error) {
	if level > maxTileLevel || width <= 0 || width > TileWidth {
		return nil, fmt.Errorf("%w: level %d width %d", ErrTileRange, level, width)
	}
	full := width == TileWidth
	if full && l.store != nil {
		if t, ok := l.store.readTile(level, index); ok {
			mTileCacheHits.Inc()
			return t, nil
		}
		mTileCacheMisses.Inc()
	}
	// Bound the request by the committed head (an atomic, not the log
	// lock): the tree may momentarily hold nodes of a batch that is
	// still fsyncing and could yet roll back, and an immutable-cacheable
	// response must never leak those.
	lo := index * TileWidth
	hi := lo + uint64(width)
	if hi > tileNodeCount(l.committed.Load(), level) {
		return nil, fmt.Errorf("%w: tile (%d, %d) width %d", ErrTileRange, level, index, width)
	}
	var hashes []Hash
	err := l.withHydration(func() error {
		var terr error
		hashes, terr = l.tree.nodes(int(level)*TileHeight, lo, hi)
		return terr
	})
	if err != nil {
		return nil, err
	}
	t := &Tile{Level: level, Index: index, Hashes: hashes}
	if full && l.store != nil {
		// Write-through so the next request is a file read. Best effort:
		// a failed cache write must not fail the tile it caches.
		if l.store.writeTile(t) == nil {
			mTilesPublished.Inc()
		}
	}
	return t, nil
}

// tilesDue reports whether committing up to size completed at least one
// full level-0 tile the publisher has not covered.
func (l *Log) tilesDue(size uint64) bool {
	return fullTileCount(size, 0) > fullTileCount(l.tileMark.Load(), 0)
}

// publishTilesBG is the background publisher goroutine spawned by the
// commit path (at most one in flight, like the checkpoint writer).
func (l *Log) publishTilesBG() {
	defer l.tileWG.Done()
	defer l.tileBusy.Store(false)
	_ = l.PublishTiles()
}

// PublishTiles persists every full tile the committed tree supports
// that the publisher has not yet covered, then advances the durable
// watermark. The automatic path runs this in the background after
// commits complete a tile; the method is exposed for operator tooling
// and deterministic tests. Best-effort by design: on error the tiles
// remain servable from the tree and the next trigger retries.
func (l *Log) PublishTiles() error {
	if l.store == nil {
		return fmt.Errorf("translog: publishing tiles of an in-memory log")
	}
	n := l.committed.Load()
	mark := l.tileMark.Load()
	for level := uint64(0); level <= maxTileLevel; level++ {
		want := fullTileCount(n, level)
		if want == 0 {
			break
		}
		for index := fullTileCount(mark, level); index < want; index++ {
			lo := index * TileWidth
			var hashes []Hash
			err := l.withHydration(func() error {
				var terr error
				hashes, terr = l.tree.nodes(int(level)*TileHeight, lo, lo+TileWidth)
				return terr
			})
			if err != nil {
				return err
			}
			if err := l.store.writeTile(&Tile{Level: level, Index: index, Hashes: hashes}); err != nil {
				return err
			}
			mTilesPublished.Inc()
		}
	}
	l.tileMark.Store(n)
	l.store.storeTileMark(n)
	mTileMark.Set(int64(n))
	return nil
}
