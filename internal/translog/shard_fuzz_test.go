package translog

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// FuzzShardedRecovery drives the sharded store through fuzzer-chosen
// multi-host append interleavings and a fuzzer-chosen crash point, then
// checks the invariant the whole design rests on: recovery from the
// interleaved per-host segment streams always reproduces the exact
// global order — and therefore the exact root hash — of a reference
// single-stream log holding the entries that durably landed, with each
// stream's torn tail truncated independently.
//
// The input script: byte 0 picks the host count (1..4), byte 1 the shard
// count (2..4), the last byte the crash point; the bytes between split
// in half — the first half commits batches through the real append path
// (each byte: 1..5 entries spread across hosts), the second half forms
// one final cycle whose records are written by hand in store write
// order (shard-ascending) and cut off mid-stream at the crash point,
// exactly the bytes an OS crash mid-cycle leaves behind.
func FuzzShardedRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0})
	f.Add([]byte{1, 2, 7, 200, 3, 9, 0xFF})
	f.Add([]byte{3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0x80})
	f.Add([]byte{2, 3, 0xAA, 0x55, 0x11, 0x22, 0x33, 0x44, 0x99, 0x40})
	f.Add([]byte{3, 2, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		nHosts := int(data[0])%4 + 1
		shards := int(data[1])%3 + 2
		crash := data[len(data)-1]
		script := data[2 : len(data)-1]
		half := len(script) / 2

		key := testSigner(t)
		dir := t.TempDir()
		cfg := StoreConfig{Shards: shards, SegmentMaxBytes: 512}
		l, err := OpenDurableLog(key, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}

		seq := 0
		mk := func(host int) Entry {
			e := Entry{
				Type:      EntryAttestOK,
				Timestamp: int64(1700000000000 + seq),
				Actor:     fmt.Sprintf("fw-%d", seq),
				Host:      fmt.Sprintf("host-%d", host),
				Detail:    "OK",
			}
			seq++
			return e
		}

		// Committed phase: real appends, fsynced and headed.
		var committed []Entry
		for _, b := range script[:half] {
			count := int(b)%5 + 1
			batch := make([]Entry, 0, count)
			for i := 0; i < count; i++ {
				batch = append(batch, mk((int(b)+i)%nHosts))
			}
			if _, err := l.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			committed = append(committed, batch...)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Crashing cycle: hand-written records, cut at the crash point.
		expect := committed
		tail := make([]Entry, 0, len(script)-half)
		for _, b := range script[half:] {
			tail = append(tail, mk(int(b)%nHosts))
		}
		if len(tail) > 0 {
			base := uint64(len(committed))
			type frame struct {
				shard int
				index uint64
				rec   []byte
			}
			frames := make([]frame, 0, len(tail))
			total := 0
			for i, e := range tail {
				fr := frame{
					shard: ShardOf(e.Host, shards),
					index: base + uint64(i),
					rec:   appendIndexedRecord(nil, base+uint64(i), e.Marshal()),
				}
				frames = append(frames, fr)
				total += len(fr.rec)
			}
			// Store write order: streams written shard-ascending, each
			// stream's records in global order.
			sort.SliceStable(frames, func(i, j int) bool {
				if frames[i].shard != frames[j].shard {
					return frames[i].shard < frames[j].shard
				}
				return frames[i].index < frames[j].index
			})
			cut := int(uint64(crash) * uint64(total+1) / 256)
			landed := map[uint64]bool{}
			remaining := cut
			for _, fr := range frames {
				n := len(fr.rec)
				if n > remaining {
					n = remaining
				}
				if n > 0 {
					appendToStreamTail(t, dir, fr.shard, fr.rec[:n])
				}
				if n == len(fr.rec) {
					landed[fr.index] = true
				}
				remaining -= n
			}
			// Recovery keeps the contiguous prefix of what fully landed.
			for i := range tail {
				if !landed[base+uint64(i)] {
					break
				}
				expect = append(expect, tail[i])
			}
		}

		re, err := OpenDurableLog(key, dir, cfg)
		if err != nil {
			t.Fatalf("crash state refused: %v", err)
		}
		if re.Size() != uint64(len(expect)) {
			t.Fatalf("recovered %d entries, want %d", re.Size(), len(expect))
		}
		if got := re.Entries(0, re.Size()); len(expect) > 0 && !reflect.DeepEqual(got, expect) {
			t.Fatal("replayed global order diverged from the reference order")
		}
		// The root must equal a single-stream reference log's root over
		// the same entries.
		ref, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.AppendBatch(expect); err != nil {
			t.Fatal(err)
		}
		refRoot, err := ref.RootAt(uint64(len(expect)))
		if err != nil {
			t.Fatal(err)
		}
		gotRoot, err := re.RootAt(re.Size())
		if err != nil {
			t.Fatal(err)
		}
		if gotRoot != refRoot {
			t.Fatal("sharded recovery root differs from single-stream reference root")
		}
		// Appends resume on a clean frame boundary and survive a reopen:
		// the per-stream truncation was physical.
		if _, err := re.Append(mk(0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := OpenDurableLog(key, dir, cfg)
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if again.Size() != uint64(len(expect))+1 {
			t.Fatalf("second recovery found %d entries, want %d", again.Size(), len(expect)+1)
		}
		again.Close()
	})
}

// appendToStreamTail appends raw bytes to the newest segment of a shard
// stream, creating the stream's first segment when none exists — the
// file-level effect of a crash mid-way through a stream write.
func appendToStreamTail(t *testing.T, dir string, shard int, raw []byte) {
	t.Helper()
	_, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := uint64(0)
	if firsts := shardFirsts[shard]; len(firsts) > 0 {
		first = firsts[len(firsts)-1]
	}
	path := filepath.Join(dir, shardSegmentName(shard, first))
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(raw); err != nil {
		t.Fatal(err)
	}
	fh.Close()
}
