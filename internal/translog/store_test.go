package translog

import (
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// mixedEntries builds n deterministic entries across every type; every
// 7th serial-bearing credential is later revoked.
func mixedEntries(n int) []Entry {
	rng := mrand.New(mrand.NewSource(7))
	out := make([]Entry, 0, n)
	types := []EntryType{EntryEnroll, EntryAttestOK, EntryAttestFail, EntryProvision}
	var issued []string
	for len(out) < n {
		typ := types[rng.Intn(len(types))]
		e := Entry{
			Type:      typ,
			Timestamp: int64(1700000000000 + len(out)),
			Actor:     fmt.Sprintf("fw-%d", rng.Intn(64)),
			Host:      fmt.Sprintf("host-%d", rng.Intn(4)),
			Detail:    "OK",
		}
		switch typ {
		case EntryEnroll, EntryProvision:
			e.Serial = fmt.Sprint(100000 + len(out))
			issued = append(issued, e.Serial)
		case EntryAttestFail:
			e.Detail = "measurement mismatch"
			e.Measurement = []byte{byte(len(out)), 0xAB}
		}
		out = append(out, e)
		if len(issued) > 0 && len(issued)%7 == 0 && len(out) < n {
			out = append(out, Entry{
				Type: EntryRevoke, Timestamp: int64(1700000000000 + len(out)),
				Actor: "vm", Serial: issued[len(issued)-1], Detail: "trust withdrawn",
			})
			issued = issued[:len(issued)-1]
		}
	}
	return out[:n]
}

// appendAll commits entries in pseudo-random batch sizes, exercising the
// batch boundaries segment rotation has to respect.
func appendAll(t *testing.T, l *Log, entries []Entry) {
	t.Helper()
	rng := mrand.New(mrand.NewSource(11))
	for len(entries) > 0 {
		n := 1 + rng.Intn(97)
		if n > len(entries) {
			n = len(entries)
		}
		if _, err := l.AppendBatch(entries[:n]); err != nil {
			t.Fatal(err)
		}
		entries = entries[n:]
	}
}

// smallSegments forces frequent rotation so recovery replays many files.
func smallSegments() StoreConfig { return StoreConfig{SegmentMaxBytes: 2048} }

// TestDurableRoundTrip is the headline property: a log with ≥1000 mixed
// entries (revocations included) survives close/reopen with an identical
// root hash, tree head, entry sequence, serial index and revocation set.
func TestDurableRoundTrip(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	entries := mixedEntries(1200)

	l, err := OpenDurableLog(key, dir, smallSegments())
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, entries)
	sthBefore := l.STH()
	rootBefore, err := l.RootAt(l.Size())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurableLog(key, dir, smallSegments())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Size(); got != uint64(len(entries)) {
		t.Fatalf("reopened size %d, want %d", got, len(entries))
	}
	rootAfter, err := re.RootAt(re.Size())
	if err != nil {
		t.Fatal(err)
	}
	if rootAfter != rootBefore {
		t.Fatal("root hash changed across restart")
	}
	sthAfter := re.STH()
	if sthAfter.Size != sthBefore.Size || sthAfter.RootHash != sthBefore.RootHash {
		t.Fatalf("tree head changed across restart: %d/%x vs %d/%x",
			sthBefore.Size, sthBefore.RootHash[:4], sthAfter.Size, sthAfter.RootHash[:4])
	}
	if err := sthAfter.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
	if got := re.Entries(0, re.Size()); !reflect.DeepEqual(got, entries) {
		t.Fatal("entry sequence changed across restart")
	}

	// Serial index and revocation set were rebuilt from the replay:
	// every serial proves or refuses exactly as before.
	for _, e := range entries {
		if e.Serial == "" {
			continue
		}
		pbWant, errWant := l.ProveSerial(e.Serial)
		pbGot, errGot := re.ProveSerial(e.Serial)
		if !errors.Is(errGot, errWant) && (errWant == nil) != (errGot == nil) {
			t.Fatalf("serial %s: reopened err %v, want %v", e.Serial, errGot, errWant)
		}
		if re.SerialRevoked(e.Serial) != l.SerialRevoked(e.Serial) {
			t.Fatalf("serial %s: revocation flag diverged", e.Serial)
		}
		if pbWant == nil {
			continue
		}
		if pbGot.Index != pbWant.Index {
			t.Fatalf("serial %s: index %d, want %d", e.Serial, pbGot.Index, pbWant.Index)
		}
		if err := pbGot.Verify(&key.PublicKey); err != nil {
			t.Fatalf("serial %s: reopened proof: %v", e.Serial, err)
		}
	}
}

// TestDurableProofSurvivesRestart shows the guarantee the example acts
// out: a proof bundle issued before a restart still verifies afterwards,
// and the post-restart head is a consistency-proven extension of the
// pre-restart one.
func TestDurableProofSurvivesRestart(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, smallSegments())
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(300))
	var serial string
	for _, e := range l.Entries(0, l.Size()) {
		if (e.Type == EntryEnroll || e.Type == EntryProvision) && e.Serial != "" && !l.SerialRevoked(e.Serial) {
			serial = e.Serial
			break
		}
	}
	if serial == "" {
		t.Fatal("no provable serial in fixture")
	}
	pb, err := l.ProveSerial(serial)
	if err != nil {
		t.Fatal(err)
	}
	preSTH := l.STH()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurableLog(key, dir, smallSegments())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := pb.Verify(&key.PublicKey); err != nil {
		t.Fatalf("pre-restart proof no longer verifies: %v", err)
	}
	if _, err := re.AppendBatch(mixedEntries(50)); err != nil {
		t.Fatal(err)
	}
	postSTH := re.STH()
	proof, err := re.ConsistencyProof(preSTH.Size, postSTH.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(preSTH.Size, postSTH.Size, preSTH.RootHash, postSTH.RootHash, proof); err != nil {
		t.Fatalf("post-restart head not consistent with pre-restart head: %v", err)
	}
}

// TestTornTailTruncated simulates a crash mid-record: trailing garbage
// that parses as an incomplete record is cut, everything intact survives.
func TestTornTailTruncated(t *testing.T) {
	for _, tail := range [][]byte{
		{0x00, 0x00, 0x01},         // partial header
		append(make([]byte, 8), 1), // header claiming more payload than present
	} {
		key := testSigner(t)
		dir := t.TempDir()
		l, err := OpenDurableLog(key, dir, StoreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		entries := mixedEntries(40)
		appendAll(t, l, entries)
		root, err := l.RootAt(l.Size())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// A torn write: set a plausible length in the claimed-payload case.
		if len(tail) > 8 {
			binary.BigEndian.PutUint32(tail[:4], 64)
		}
		seg := filepath.Join(dir, segmentName(0))
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		re, err := OpenDurableLog(key, dir, StoreConfig{})
		if err != nil {
			t.Fatalf("torn tail not recovered: %v", err)
		}
		if re.Size() != uint64(len(entries)) {
			t.Fatalf("size %d after torn-tail recovery, want %d", re.Size(), len(entries))
		}
		if got, _ := re.RootAt(re.Size()); got != root {
			t.Fatal("root changed after torn-tail recovery")
		}
		// The truncation is physical: appends resume on a clean boundary
		// and a further reopen sees them.
		if _, err := re.Append(Entry{Type: EntryAttestOK, Actor: "fw-new", Detail: "OK"}); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := OpenDurableLog(key, dir, StoreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Size() != uint64(len(entries))+1 {
			t.Fatalf("size %d after post-truncation append, want %d", again.Size(), len(entries)+1)
		}
		again.Close()
	}
}

// TestRecoverEntriesBeyondHead simulates the other crash window: records
// durably written but the process died before the tree head was
// replaced. The extra entries are kept and a fresh head signed over them.
func TestRecoverEntriesBeyondHead(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(20))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	extra := Entry{Type: EntryAttestOK, Timestamp: 42, Actor: "fw-crash", Host: "host-0", Detail: "OK"}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(0)), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendRecord(nil, extra.Marshal())); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatalf("entries beyond head rejected: %v", err)
	}
	defer re.Close()
	if re.Size() != 21 {
		t.Fatalf("size %d, want 21", re.Size())
	}
	got, err := re.Entry(20)
	if err != nil || !reflect.DeepEqual(got, extra) {
		t.Fatalf("recovered tail entry %+v (%v), want %+v", got, err, extra)
	}
	sth := re.STH()
	if sth.Size != 21 {
		t.Fatalf("re-signed head covers %d, want 21", sth.Size)
	}
	if err := sth.Verify(&key.PublicKey); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptChecksumRejected flips one payload byte mid-segment: the
// record's checksum no longer matches and the open must refuse with
// ErrStateCorrupt — never truncate away committed interior history.
func TestCorruptChecksumRejected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(60))
	l.Close()

	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{}); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("corrupted record: got %v, want ErrStateCorrupt", err)
	}
}

// TestRollbackDetected deletes the newest segment: the replayed state is
// shorter than the persisted signed head — the on-disk analogue of the
// split-view rollback the witness catches remotely — and the open must
// fail with the distinct rollback error.
func TestRollbackDetected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, smallSegments())
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(400))
	l.Close()

	firsts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(firsts) < 2 {
		t.Fatalf("want multiple segments, got %d", len(firsts))
	}
	if err := os.Remove(filepath.Join(dir, segmentName(firsts[len(firsts)-1]))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, smallSegments()); !errors.Is(err, ErrStateRollback) {
		t.Fatalf("rolled-back store: got %v, want ErrStateRollback", err)
	}
}

// TestTamperDetected rewrites one entry in place with valid framing (the
// checksum is fixed up): only the Merkle root comparison against the
// persisted signed head can catch this, and it must.
func TestTamperDetected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(30))
	l.Close()

	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, err := scanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite entry 3's actor and re-frame the whole segment with
	// correct checksums.
	victim, err := unmarshalEntry(payloads[3])
	if err != nil {
		t.Fatal(err)
	}
	victim.Actor = "ghost"
	payloads[3] = victim.Marshal()
	var rewritten []byte
	for _, p := range payloads {
		rewritten = appendRecord(rewritten, p)
	}
	if err := os.WriteFile(seg, rewritten, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{}); !errors.Is(err, ErrStateTampered) {
		t.Fatalf("tampered store: got %v, want ErrStateTampered", err)
	}
}

// TestMissingHeadDetected deletes sth.json while segments remain: data
// without its signed commitment is treated as tampering, not a fresh log.
func TestMissingHeadDetected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(10))
	l.Close()
	if err := os.Remove(filepath.Join(dir, sthFileName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{}); !errors.Is(err, ErrStateTampered) {
		t.Fatalf("headless store: got %v, want ErrStateTampered", err)
	}
}

// TestForeignHeadDetected swaps in a head signed by a different key: the
// signature check refuses before any root comparison.
func TestForeignHeadDetected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(10))
	l.Close()
	if _, err := OpenDurableLog(testSigner(t), dir, StoreConfig{}); !errors.Is(err, ErrStateTampered) {
		t.Fatalf("foreign-key head: got %v, want ErrStateTampered", err)
	}
}

// TestDurableAppenderConcurrent exercises the batched appender over a
// durable log under -race: concurrent producers, a flusher and head
// readers, then a reopen confirming every acknowledged entry is on disk.
func TestDurableAppenderConcurrent(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{SegmentMaxBytes: 4096, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(l, AppenderConfig{MaxBatch: 64})

	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				e := Entry{Type: EntryAttestOK, Timestamp: int64(i), Actor: fmt.Sprintf("fw-%d-%d", p, i), Detail: "OK"}
				if err := a.Append(e); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if err := a.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { // concurrent head reader
		for {
			select {
			case <-done:
				return
			default:
				_ = l.STH()
				_, _ = l.RootAt(l.Size())
			}
		}
	}()
	wg.Wait()
	close(done)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurableLog(key, dir, StoreConfig{SegmentMaxBytes: 4096, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Size(); got != producers*perProducer {
		t.Fatalf("reopened size %d, want %d", got, producers*perProducer)
	}
}

// TestSegmentFraming fuzzes the record decoder the same way the secchan
// codec test fuzzes Open: random mutation of a valid segment must never
// panic and must surface as a decode/checksum/recovery error — a mutated
// store never opens cleanly, because the persisted head covers every bit.
func TestSegmentFraming(t *testing.T) {
	key := testSigner(t)
	src := t.TempDir()
	l, err := OpenDurableLog(key, src, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(50))
	l.Close()
	segData, err := os.ReadFile(filepath.Join(src, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	sthData, err := os.ReadFile(filepath.Join(src, sthFileName))
	if err != nil {
		t.Fatal(err)
	}

	rng := mrand.New(mrand.NewSource(42))
	for i := 0; i < 250; i++ {
		mutated := append([]byte(nil), segData...)
		mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), mutated, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sthFileName), sthData, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDurableLog(key, dir, StoreConfig{}); err == nil {
			t.Fatalf("mutation %d: store opened cleanly", i)
		}
	}

	// The raw scanner itself survives arbitrary junk.
	for i := 0; i < 500; i++ {
		junk := make([]byte, rng.Intn(512))
		rng.Read(junk)
		payloads, clean, err := scanSegment(junk)
		if err == nil && clean != len(junk) {
			t.Fatalf("junk %d: clean scan stopped early", i)
		}
		_ = payloads
	}
}

// TestSegmentNameRoundTrip pins the file-name encoding recovery sorts by.
func TestSegmentNameRoundTrip(t *testing.T) {
	for _, n := range []uint64{0, 1, 255, 1 << 40} {
		first, ok := parseSegmentName(segmentName(n))
		if !ok || first != n {
			t.Fatalf("round trip %d -> %q -> %d/%v", n, segmentName(n), first, ok)
		}
	}
	for _, bad := range []string{"seg-.wal", "seg-123.wal", "sth.json", "seg-0000000000000000000x.wal"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("%q parsed as a segment", bad)
		}
	}
}

// TestDurableStoreFailsClosed latches the store after a write failure:
// the log must refuse further appends rather than diverge from disk.
func TestDurableStoreFailsClosed(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(5))
	sizeBefore := l.Size()
	// Close the store out from under the log: the next append's write
	// fails, and the in-memory state must roll back.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Type: EntryAttestOK, Actor: "fw-x", Detail: "OK"}); err == nil {
		t.Fatal("append after store close succeeded")
	}
	if l.Size() != sizeBefore {
		t.Fatalf("in-memory size %d diverged from disk %d", l.Size(), sizeBefore)
	}
	if _, err := l.Append(Entry{Type: EntryAttestOK, Actor: "fw-y", Detail: "OK"}); err == nil {
		t.Fatal("store did not latch failed")
	}
}

// TestOversizeEntryRefusedAtWrite pins review fix: an entry whose
// encoding exceeds the record frame limit is refused before any byte is
// written — committing it would brick every future open — and the log
// stays usable and reopenable afterwards.
func TestOversizeEntryRefusedAtWrite(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(3))
	huge := Entry{Type: EntryAttestFail, Actor: "fw-big", Detail: string(make([]byte, maxRecordBytes+1))}
	if _, err := l.Append(huge); err == nil {
		t.Fatal("oversize entry committed")
	}
	if l.Size() != 3 {
		t.Fatalf("size %d after refused append, want 3", l.Size())
	}
	// The store did not latch failed: normal appends continue.
	if _, err := l.Append(Entry{Type: EntryAttestOK, Actor: "fw-ok", Detail: "OK"}); err != nil {
		t.Fatalf("append after refused oversize: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatalf("reopen after refused oversize: %v", err)
	}
	defer re.Close()
	if re.Size() != 4 {
		t.Fatalf("reopened size %d, want 4", re.Size())
	}
}

// TestRefusedOpenDoesNotTruncate pins review fix: a store that fails
// verification (here: tampered prefix plus a torn tail) is refused
// without being modified — it is incident evidence, and the torn bytes
// must survive repeated open attempts.
func TestRefusedOpenDoesNotTruncate(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(20))
	l.Close()

	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper an interior payload byte with a fixed-up checksum...
	payloads, _, err := scanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := unmarshalEntry(payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	victim.Actor = "ghost"
	payloads[1] = victim.Marshal()
	var rewritten []byte
	for _, p := range payloads {
		rewritten = appendRecord(rewritten, p)
	}
	// ...and add a torn tail on top.
	rewritten = append(rewritten, 0xDE, 0xAD)
	if err := os.WriteFile(seg, rewritten, 0o600); err != nil {
		t.Fatal(err)
	}

	for attempt := 0; attempt < 2; attempt++ {
		if _, err := OpenDurableLog(key, dir, StoreConfig{}); !errors.Is(err, ErrStateTampered) {
			t.Fatalf("attempt %d: got %v, want ErrStateTampered", attempt, err)
		}
		after, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(rewritten) {
			t.Fatalf("attempt %d: refused open modified the store (%d -> %d bytes)", attempt, len(rewritten), len(after))
		}
	}
}
