package translog

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzCheckpointedRecovery drives the checkpointed-recovery path through
// fuzzer-chosen checkpoint placement and crash residue, then checks the
// tentpole invariant: a suffix-only replay from a checkpoint reproduces
// bit-for-bit the root a full replay of the same entries produces, and
// damaged or rolled-back checkpoint state is refused with the right
// taxonomy, never silently ignored.
//
// The input script: byte 0 picks the entry count (20..275), byte 1 the
// layout (single-stream or 2..4 shard streams), byte 2 where in the
// sequence the checkpoint lands, byte 3 the post-close scenario —
// nothing, stray rename-discipline temp files, a torn frame on a stream
// tail, a second checkpoint generation, a rolled-back head (must refuse
// ErrStateRollback) or a flipped checkpoint byte (must refuse
// ErrStateCorrupt).
func FuzzCheckpointedRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{80, 1, 40, 1})
	f.Add([]byte{120, 2, 100, 2})
	f.Add([]byte{200, 0, 130, 3})
	f.Add([]byte{90, 3, 60, 4})
	f.Add([]byte{150, 1, 20, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := int(data[0]) + 20
		shardOpts := []int{0, 2, 3, 4}
		shards := shardOpts[int(data[1])%len(shardOpts)]
		ckptAt := int(data[2]) % (n + 1)
		mode := int(data[3]) % 6
		// The rollback scenario needs a second, larger checkpoint
		// generation to roll back from.
		if mode == 4 && (ckptAt == 0 || ckptAt >= n) {
			mode = 0
		}

		key := testSigner(t)
		dir := t.TempDir()
		cfg := StoreConfig{Shards: shards, SegmentMaxBytes: 1024, NoSync: true}
		entries := mixedEntries(n)

		l, err := OpenDurableLog(key, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, entries[:ckptAt])
		var oldSTH []byte
		if mode == 4 {
			oldSTH, err = os.ReadFile(filepath.Join(dir, sthFileName))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, entries[ckptAt:])
		if mode == 3 || mode == 4 {
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		switch mode {
		case 1:
			// Crash mid-rename: stray temp files from the atomic write
			// discipline must be inert.
			for _, name := range []string{
				checkpointFileName + ".tmp",
				archiveName(0, 1) + ".tmp",
				sthFileName + ".tmp",
			} {
				if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o600); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			// Crash mid-append: a torn frame on a stream tail past the
			// committed head must be trimmed, not refused.
			raw := []byte{0x00, 0x00, 0x00, 0x7F, 0xAA}
			if shards > 0 {
				appendToStreamTail(t, dir, 0, raw)
			} else {
				firsts, err := listSegments(dir)
				if err != nil || len(firsts) == 0 {
					t.Fatalf("no segments: %v", err)
				}
				path := filepath.Join(dir, segmentName(firsts[len(firsts)-1]))
				fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := fh.Write(raw); err != nil {
					t.Fatal(err)
				}
				fh.Close()
			}
		case 4:
			if err := os.WriteFile(filepath.Join(dir, sthFileName), oldSTH, 0o600); err != nil {
				t.Fatal(err)
			}
			_, err := OpenDurableLog(key, dir, cfg)
			if !errors.Is(err, ErrStateRollback) {
				t.Fatalf("rolled-back head under a newer checkpoint: got %v, want ErrStateRollback", err)
			}
			return
		case 5:
			path := filepath.Join(dir, checkpointFileName)
			ck, err := os.ReadFile(path)
			if err != nil {
				// A zero-size checkpoint writes no file; nothing to flip.
				if ckptAt == 0 {
					return
				}
				t.Fatal(err)
			}
			ck[int(data[0])%len(ck)] ^= 0x20
			if err := os.WriteFile(path, ck, 0o600); err != nil {
				t.Fatal(err)
			}
			_, err = OpenDurableLog(key, dir, cfg)
			if !errors.Is(err, ErrStateCorrupt) {
				t.Fatalf("bit-flipped checkpoint: got %v, want ErrStateCorrupt", err)
			}
			return
		}

		re, err := OpenDurableLog(key, dir, cfg)
		if err != nil {
			t.Fatalf("clean checkpointed state refused: %v", err)
		}
		if re.Size() != uint64(n) {
			t.Fatalf("recovered %d entries, want %d", re.Size(), n)
		}
		// The root must equal a full in-memory replay's root, bit for bit.
		ref, err := NewLog(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.AppendBatch(entries); err != nil {
			t.Fatal(err)
		}
		refRoot, err := ref.RootAt(uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		gotRoot, err := re.RootAt(re.Size())
		if err != nil {
			t.Fatal(err)
		}
		if gotRoot != refRoot {
			t.Fatal("suffix-replay root differs from full-replay root")
		}
		// Cold reads hydrate from archives and match the originals.
		if got := re.Entries(0, re.Size()); !reflect.DeepEqual(got, entries) {
			t.Fatal("hydrated entry sequence diverged from the originals")
		}
		// A proof spanning the frozen prefix still verifies.
		pb, err := re.ProveSerial(issuedSerial(t, entries))
		if err != nil {
			t.Fatal(err)
		}
		if err := pb.Verify(&key.PublicKey); err != nil {
			t.Fatal(err)
		}
		// Appends resume cleanly and survive another checkpointed reopen.
		extra := mixedEntries(n + 3)[n:]
		appendAll(t, re, extra)
		if err := re.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := OpenDurableLog(key, dir, cfg)
		if err != nil {
			t.Fatalf("second checkpointed recovery: %v", err)
		}
		if again.Size() != uint64(n+3) {
			t.Fatalf("second recovery found %d entries, want %d", again.Size(), n+3)
		}
		again.Close()
	})
}
