// Gossip: the multi-party half of rollback protection. The durable store
// (store.go/recover.go) pins the log to its own disk, but an attacker who
// rewinds the WAL segments *and* the persisted signed tree head together
// presents a perfectly consistent earlier state — locally undetectable.
// Witnesses that remember the newest verified head off that disk, persist
// it across their own restarts, and gossip it to each other turn that
// rewind into a cross-witness alarm: somewhere in the set a remembered
// head is larger than the served one, and the two signed heads are
// self-certifying evidence (ConflictError).
package translog

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"vnfguard/internal/statedir"
)

// witnessHeadFile returns the statedir entry name under which witness
// name persists its last-accepted signed tree head.
func witnessHeadFile(name string) string { return "witness-" + name + "-head.json" }

// witnessCursorFile returns the statedir entry name under which witness
// name persists its shard-audit cursors (EnablePartition).
func witnessCursorFile(name string) string { return "witness-" + name + "-shards.json" }

// OpenWitnessState returns a witness whose last-accepted head is durably
// persisted in dir (statedir.Dir.Write is atomic, so readers never see a
// torn head). A previously persisted head is restored — signature-checked
// — so a witness restart resumes from remembered history instead of
// re-anchoring at whatever the log serves next, which is exactly the
// amnesia a local rollback attack needs.
func OpenWitnessState(dir *statedir.Dir, name string, pub *ecdsa.PublicKey) (*Witness, error) {
	w := NewWitness(pub)
	entry := witnessHeadFile(name)
	data, err := dir.Read(entry)
	switch {
	case err == nil:
		var sth SignedTreeHead
		if err := json.Unmarshal(data, &sth); err != nil {
			return nil, fmt.Errorf("translog: persisted witness head undecodable: %w", err)
		}
		if err := w.Restore(sth); err != nil {
			return nil, fmt.Errorf("translog: persisted witness head: %w", err)
		}
	case errors.Is(err, os.ErrNotExist):
		// First run: nothing to restore.
	default:
		return nil, fmt.Errorf("translog: reading persisted witness head: %w", err)
	}
	w.save = func(sth SignedTreeHead) error {
		data, err := json.Marshal(sth)
		if err != nil {
			return err
		}
		return dir.Write(entry, data)
	}
	return w, nil
}

// GossipPool runs one witness's side of the gossip protocol: it advances
// on the log's served heads, swaps last-accepted heads with a set of peer
// witnesses, and latches the first ConflictError — two irreconcilable
// signed heads — any of those observations produces.
type GossipPool struct {
	name string
	w    *Witness
	// log audits the server under watch: served heads and consistency
	// proofs. May be nil for a pure relay witness (gossip only).
	log *Client

	// tiles, when set (UseTileProofs), assembles consistency proofs
	// client-side from cached tiles instead of asking the server's
	// consistency endpoint per advance.
	tiles *TileAssembler

	mu       sync.Mutex
	peers    []*Client
	conflict *ConflictError
	jitter   JitterSource

	// Partitioned mode (EnablePartition): the pinned assignment, this
	// witness's co-signing key (nil: audit without co-signing), the
	// audit batch bound per shard per round, and the largest head size
	// already co-signed and submitted.
	part         *WitnessPartition
	key          *WitnessKey
	maxAudit     uint64
	cosignedSize uint64
}

// defaultMaxAuditPerShard bounds how many stream entries one gossip
// round audits per assigned shard, so a witness catching up on a long
// history spreads the work over rounds instead of stalling one.
const defaultMaxAuditPerShard = 4096

// NewGossipPool builds a pool for witness w (named for evidence
// attribution) watching the log served by logClient.
func NewGossipPool(name string, w *Witness, logClient *Client) *GossipPool {
	return &GossipPool{name: name, w: w, log: logClient}
}

// UseTileProofs switches the pool's consistency-proof fetches onto a
// tile assembler over the watched log, caching up to cacheTiles
// expanded tiles (≤ 0: default). A fleet of witnesses each advancing on
// every served head is exactly the fan-out per-request proof
// computation cannot serve: with tiles, each advance is a handful of
// immutable (and usually already-cached) tile fetches, folded locally.
// Harmless to verification — an assembled proof convinces the witness
// through the same VerifyConsistency check a server-computed one must
// pass. Call before the pool starts exchanging.
func (g *GossipPool) UseTileProofs(cacheTiles int) {
	if g.log != nil {
		g.tiles = NewTileAssembler(g.log, cacheTiles)
	}
}

// EnablePartition switches the pool into partitioned-audit mode: the
// witness takes its assigned slice of the shard streams from the pinned
// partition, audits exactly that slice entry-by-entry on every
// exchange, gossips its audit cursors alongside its head, and — when
// key is non-nil — co-signs every fully audited head and submits the
// signature to the watched log's cosign collector. dir, when non-nil,
// persists the audit cursors under the witness's name so a restart
// resumes its chains instead of re-anchoring them (the shard-level
// equivalent of OpenWitnessState). The pool must be watching a log
// (NewGossipPool with a client); the partition must know this witness.
func (g *GossipPool) EnablePartition(p *WitnessPartition, key *WitnessKey, dir *statedir.Dir) error {
	if g.log == nil {
		return errors.New("translog: partitioned audit needs a log to watch")
	}
	assigned := p.AssignedShards(g.name)
	if len(assigned) == 0 {
		return fmt.Errorf("%w: witness %q is not in the partition", ErrPartitionInvalid, g.name)
	}
	if key != nil && key.Name() != g.name {
		return fmt.Errorf("%w: co-signing key is for %q, pool is %q", ErrPartitionInvalid, key.Name(), g.name)
	}
	g.w.SetAssignedShards(p.Shards(), assigned)
	if dir != nil {
		entry := witnessCursorFile(g.name)
		data, err := dir.Read(entry)
		switch {
		case err == nil:
			if err := g.w.restoreCursors(data); err != nil {
				return err
			}
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to restore.
		default:
			return fmt.Errorf("translog: reading persisted shard cursors: %w", err)
		}
		g.w.mu.Lock()
		g.w.saveCursors = func(data []byte) error { return dir.Write(entry, data) }
		g.w.mu.Unlock()
	}
	g.mu.Lock()
	g.part, g.key = p, key
	if g.maxAudit == 0 {
		g.maxAudit = defaultMaxAuditPerShard
	}
	g.mu.Unlock()
	return nil
}

// Partition returns the pinned partition in effect (nil: full-fleet
// mode).
func (g *GossipPool) Partition() *WitnessPartition {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.part
}

// auditSource composes the shard-audit read path: stream slices always
// come from the watched log's shard endpoint; inclusion proofs ride the
// tile assembler when UseTileProofs is on, so the per-entry audit
// fan-out hits the cacheable tile path instead of the proof endpoint.
func (g *GossipPool) auditSource() ShardAuditSource {
	if g.tiles != nil {
		return &tileShardSource{stream: g.log, proofs: g.tiles}
	}
	return g.log
}

// tileShardSource is a ShardAuditSource splitting streams and proofs
// across transports.
type tileShardSource struct {
	stream *Client
	proofs *TileAssembler
}

func (t *tileShardSource) ShardStream(shard int, start, count uint64) (uint64, []IndexedEntry, error) {
	return t.stream.ShardStream(shard, start, count)
}

func (t *tileShardSource) InclusionProof(index, size uint64) ([]Hash, error) {
	return t.proofs.InclusionProof(index, size)
}

// Name returns the pool's witness name.
func (g *GossipPool) Name() string { return g.name }

// Witness returns the underlying witness state.
func (g *GossipPool) Witness() *Witness { return g.w }

// AddPeer registers another witness's gossip endpoint.
func (g *GossipPool) AddPeer(c *Client) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.peers = append(g.peers, c)
}

// Peers returns the current peer set.
func (g *GossipPool) Peers() []*Client {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Client(nil), g.peers...)
}

// SetPeers replaces the peer set wholesale — discovery reruns use this
// to drop witnesses that republished a new gossip URL after a restart,
// instead of accumulating dead endpoints forever.
func (g *GossipPool) SetPeers(clients []*Client) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.peers = append([]*Client(nil), clients...)
}

// Conflict returns the first latched conviction, if any.
func (g *GossipPool) Conflict() *ConflictError {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.conflict
}

// latch records the first conviction; later ones only add noise.
func (g *GossipPool) latch(err error) error {
	var ce *ConflictError
	if errors.As(err, &ce) {
		convictionCounter(ce).Inc()
		g.mu.Lock()
		if g.conflict == nil {
			g.conflict = ce
		}
		g.mu.Unlock()
	}
	return err
}

// fetchConsistency proxies proofs from the watched log; without one the
// merge can only compare equal-size heads. With tiles enabled the proof
// is assembled locally from cached tiles, falling back to the server's
// consistency endpoint if the tile read path cannot cover the range
// (e.g. an old server without the tile endpoint).
func (g *GossipPool) fetchConsistency(first, second uint64) ([]Hash, error) {
	if g.log == nil {
		return nil, errors.New("translog: gossip pool has no log to fetch consistency proofs from")
	}
	if g.tiles != nil {
		if proof, err := g.tiles.ConsistencyProof(first, second); err == nil {
			return proof, nil
		}
	}
	return g.log.ConsistencyProof(first, second)
}

// ReceiveHead folds in a head observed from a peer (the server side of
// POST /translog/v1/gossip) and returns this witness's current view. A
// peer head newer than what the watched log currently serves is the
// gossip protocol's sharpest verdict: the log signed that head for the
// peer, so serving less now is a rollback — evidence is the peer's head
// against the served one.
func (g *GossipPool) ReceiveHead(peer SignedTreeHead) (SignedTreeHead, bool, error) {
	err := g.mergeHead(peer)
	last, seen := g.w.Last()
	return last, seen, err
}

// receiveView is ReceiveHead plus the partitioned-audit extras: the
// peer's shard marks are judged against our own chains (only where our
// assignment overlaps and depths match — a peer ignorant of a shard is
// never evidence) and our marks travel back in the response.
func (g *GossipPool) receiveView(in wireGossip) (wireGossip, error) {
	var errs []error
	if in.Seen {
		if err := g.mergeHead(in.Head); err != nil {
			errs = append(errs, err)
		}
		if len(in.Marks) > 0 && g.Partition() != nil {
			if err := g.latch(g.w.mergeShardMarks(in.Name, in.Head, in.Marks)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return g.localView(), errors.Join(errs...)
}

// localView snapshots this witness's gossiped view: head plus, in
// partitioned mode, its audit marks.
func (g *GossipPool) localView() wireGossip {
	last, seen := g.w.Last()
	out := wireGossip{Name: g.name, Seen: seen, Head: last}
	if g.Partition() != nil {
		out.Marks = g.w.shardMarks()
	}
	return out
}

// mergeHead is the shared merge path for heads learned from peers. The
// signature is verified exactly once here, at the trust boundary; the
// witness merge below runs on the pre-verified head.
func (g *GossipPool) mergeHead(peer SignedTreeHead) error {
	if err := peer.Verify(g.w.pub); err != nil {
		return err
	}
	if last, seen := g.w.Last(); seen && peer.Size > last.Size && g.log != nil {
		// Before asking for a consistency proof the log may not be able to
		// give, compare the peer head with what the log serves right now:
		// served < peer-remembered is a rollback conviction on its own.
		if served, err := g.log.STH(); err == nil && served.Size < peer.Size {
			return g.latch(&ConflictError{Kind: ErrRollback, Have: peer, Got: served,
				Detail: fmt.Sprintf("log serves %d entries but a peer holds its signed head covering %d", served.Size, peer.Size)})
		}
	}
	return g.latch(g.w.mergeVerified(peer, g.fetchConsistency))
}

// corroboratePeerConviction handles a conviction a peer reported (an HTTP
// 409 evidence bundle). Peer claims are not taken on faith — a malicious
// peer must not be able to kill honest witnesses with fabricated or
// replayed evidence. Equal-size/different-root pairs are self-certifying
// and latch directly; anything else is treated as a hint: the evidence
// heads are run through our own first-hand merge, so the conviction only
// latches if the log really is misbehaving from where we stand.
func (g *GossipPool) corroboratePeerConviction(ce *ConflictError) error {
	if err := ce.Verify(g.w.pub); err != nil {
		return fmt.Errorf("translog: peer conviction with unverifiable evidence dropped: %w", err)
	}
	if ce.SelfCertifying(g.w.pub) {
		g.latch(ce)
		return ce
	}
	for _, head := range []SignedTreeHead{ce.Have, ce.Got} {
		if err := g.mergeHead(head); err != nil {
			return err
		}
	}
	return fmt.Errorf("translog: peer conviction not corroborated from our view (peer reported: %v)", ce)
}

// Exchange runs one gossip round: advance on the served head, then swap
// heads with every peer and merge what they hold. All conflicts are
// latched; the returned error joins everything that went wrong this round
// (transport errors included — a witness that cannot reach its peers is
// degraded, not convicted).
func (g *GossipPool) Exchange() error {
	start := time.Now()
	var errs []error
	if g.log != nil {
		sth, err := g.log.STH()
		if err != nil {
			errs = append(errs, err)
		} else {
			if last, seen := g.w.Last(); seen && sth.Size >= last.Size {
				mGossipHeadLag.Set(int64(sth.Size - last.Size))
			}
			if err := g.latch(g.w.Advance(sth, g.fetchConsistency)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if g.Partition() != nil {
		if err := g.auditAndCosign(); err != nil {
			errs = append(errs, err)
		}
	}
	peers := g.Peers()
	mGossipPeers.Set(int64(len(peers)))
	for _, p := range peers {
		peerView, err := p.exchangeView(g.localView())
		if err != nil {
			// A 409 from the peer is a conviction claim, which must be
			// corroborated before it can latch; transport errors are just
			// degradation.
			var ce *ConflictError
			if errors.As(err, &ce) {
				err = g.corroboratePeerConviction(ce)
			}
			if err != nil {
				errs = append(errs, err)
			}
			continue
		}
		if !peerView.Seen {
			continue
		}
		if err := g.mergeHead(peerView.Head); err != nil {
			errs = append(errs, err)
		}
		if len(peerView.Marks) > 0 && g.Partition() != nil {
			if err := g.latch(g.w.mergeShardMarks(peerView.Name, peerView.Head, peerView.Marks)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	err := errors.Join(errs...)
	mGossipExchanges.Inc()
	if err != nil {
		mGossipErrors.Inc()
	}
	mGossipSeconds.Observe(time.Since(start))
	mGossipLast.Mark()
	return err
}

// auditAndCosign runs the partitioned half of an exchange: verify the
// assigned shard streams against the adopted head, and — when the
// streams are fully audited up to it and a co-signing key is held —
// submit this witness's co-signature to the watched log's collector.
func (g *GossipPool) auditAndCosign() error {
	last, seen := g.w.Last()
	if !seen {
		return nil
	}
	g.mu.Lock()
	maxAudit := g.maxAudit
	key := g.key
	g.mu.Unlock()
	if err := g.latch(g.w.AuditShards(last, g.auditSource(), maxAudit)); err != nil {
		return err
	}
	if key == nil {
		return nil
	}
	g.mu.Lock()
	already := last.Size <= g.cosignedSize && g.cosignedSize != 0
	g.mu.Unlock()
	if already || !g.auditCaughtUp(last) {
		return nil
	}
	ws, err := key.Cosign(last)
	if err != nil {
		return err
	}
	cosignStart := time.Now()
	_, err = g.log.SubmitCosign(last, ws)
	mCosignSeconds.Observe(time.Since(cosignStart))
	if err != nil && !errors.Is(err, ErrDuplicateWitness) {
		// An equivocation or split-view verdict in the reply is latched
		// like any conviction; duplicates just mean a retried round.
		return g.latch(err)
	}
	g.mu.Lock()
	if last.Size > g.cosignedSize || g.cosignedSize == 0 {
		g.cosignedSize = last.Size
	}
	g.mu.Unlock()
	return nil
}

// auditCaughtUp reports whether every assigned shard's cursor has
// audited all stream entries the head covers — the precondition for
// co-signing it: a witness must never vouch for entries it has not
// verified.
func (g *GossipPool) auditCaughtUp(head SignedTreeHead) bool {
	src := g.auditSource()
	for _, s := range g.w.AssignedShards() {
		g.w.mu.Lock()
		cur := g.w.cursors[s]
		count := uint64(0)
		if cur != nil {
			count = cur.Count
		}
		g.w.mu.Unlock()
		total, ents, err := src.ShardStream(s, count, 1)
		if err != nil {
			return false
		}
		if count < total && len(ents) > 0 && ents[0].Index < head.Size {
			// An unaudited stream entry below the head remains.
			return false
		}
	}
	return true
}

// JitterSource yields uniform samples in [0, 1) for exchange-loop
// jitter. Injectable so tests drive the loop deterministically instead
// of sleeping through randomized intervals; nil means the global
// math/rand source.
type JitterSource func() float64

// jitterFrom returns d scaled by a uniform factor in [0.8, 1.2), so a
// fleet of witnesses started together does not synchronise its gossip
// rounds into thundering herds against the log and each other. src is
// the sample source (nil for the global math/rand source).
func jitterFrom(d time.Duration, src JitterSource) time.Duration {
	if src == nil {
		src = rand.Float64
	}
	return time.Duration(float64(d) * (0.8 + 0.4*src()))
}

// SetJitterSource replaces the loop's jitter source (nil restores the
// global math/rand source). Call before Loop starts.
func (g *GossipPool) SetJitterSource(src JitterSource) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.jitter = src
}

// jitterSource returns the configured source (possibly nil).
func (g *GossipPool) jitterSource() JitterSource {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.jitter
}

// Loop exchanges gossip until stop is closed, sleeping a jittered
// interval between rounds. Every round's error (nil included) is passed
// to report, which may be nil; the loop keeps running on errors — the
// conviction stays latched in Conflict() for the caller to act on.
func (g *GossipPool) Loop(interval time.Duration, stop <-chan struct{}, report func(error)) {
	for {
		err := g.Exchange()
		if report != nil {
			report(err)
		}
		t := time.NewTimer(jitterFrom(interval, g.jitterSource()))
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}
