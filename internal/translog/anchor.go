// Trust anchors: the pluggable layer rollback protection hangs off.
//
// A durable log's recovery can replay and checksum its WAL, but "is
// this the *newest* committed state?" can only be answered by a memory
// the attacker could not rewrite alongside the statedir. Each such
// memory is a TrustAnchor: the store's own persisted signed tree head
// (catches rewinds that disagree with it), a witness's persisted head
// (catches consistent rewinds of segments + head together, as long as
// the witness state survives), and an enclave-sealed monotonic head
// (sealed.go — catches even a total-amnesia rewind where the disk and
// every witness lost state together, because the counter lives in
// platform hardware). OpenDurableLog runs every configured anchor at
// recovery and notifies every anchor of each committed head, so future
// anchors (TPM NV, remote notary) slot in without another recovery
// rewrite.
package translog

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"vnfguard/internal/statedir"
)

// RecoveredState is the replayed-and-verified view of a store's disk
// state handed to each trust anchor at open: the durable entry count
// and the recomputed Merkle roots over it. Anchors compare it against
// whatever head they remember.
type RecoveredState struct {
	// Size is the number of durable, decodable entries on disk.
	Size uint64
	// Segments counts the segment files found on disk — distinct from
	// Size because a torn first record decodes to zero entries while
	// the file's existence still proves a genesis head was once
	// persisted.
	Segments int
	// rootAt recomputes the Merkle root over the first n entries.
	rootAt func(n uint64) (Hash, error)
}

// RootAt returns the recomputed Merkle root over the first n recovered
// entries (n ≤ Size).
func (s *RecoveredState) RootAt(n uint64) (Hash, error) { return s.rootAt(n) }

// TrustAnchor is one independently rooted memory of the log's newest
// committed head. Implementations must refuse (CheckRecovery error) any
// recovered state older than — or contradicting — what they remember,
// and must remember every head the store commits. CommitHead is called
// under the store's commit lock, after the batch's records are durable,
// in the order anchors were configured; an error latches the store
// failed, so a head no anchor recorded is never acknowledged.
// Implementations that hold resources may also implement io.Closer;
// the store closes them on Close.
type TrustAnchor interface {
	// Name identifies the anchor in errors and operator logs.
	Name() string
	// CheckRecovery verifies the recovered disk state against the
	// anchor's remembered head. A nil error means the state is at least
	// as new as everything this anchor remembers.
	CheckRecovery(state *RecoveredState) error
	// CommitHead records a newly committed signed tree head.
	CommitHead(sth SignedTreeHead) error
}

// ---- plain statedir STH anchor --------------------------------------------

// sthAnchor is the baseline anchor every durable store runs: the latest
// signed tree head, atomically persisted as sth.json in the store
// directory. It catches crashes, torn writes and any rewind that
// disagrees with the persisted head — but not a consistent rewind of
// segments and head together, which is what the witness and sealed
// anchors exist for.
type sthAnchor struct {
	dir    string
	pub    *ecdsa.PublicKey
	noSync bool

	mu   sync.Mutex
	sth  SignedTreeHead
	have bool
}

// newSTHAnchor returns the plain persisted-head anchor for a store
// directory, verifying heads against the log public key.
func newSTHAnchor(dir string, pub *ecdsa.PublicKey) *sthAnchor {
	return &sthAnchor{dir: dir, pub: pub}
}

// Name implements TrustAnchor.
func (a *sthAnchor) Name() string { return "statedir-sth" }

// CheckRecovery verifies the persisted head's signature and that the
// recovered state covers (and hashes to) exactly what it signed.
func (a *sthAnchor) CheckRecovery(state *RecoveredState) error {
	sth, have, err := loadSTH(a.dir)
	if err != nil {
		return err
	}
	if !have {
		if state.Segments > 0 {
			// Segment files can only exist after the genesis head was
			// persisted, so a missing head alongside them is deletion,
			// not a fresh directory — even when every record in them
			// was torn away.
			return fmt.Errorf("%w: %d segment file(s) but no persisted tree head", ErrStateTampered, state.Segments)
		}
		return nil
	}
	if err := sth.Verify(a.pub); err != nil {
		return fmt.Errorf("%w: persisted tree head signature invalid", ErrStateTampered)
	}
	if state.Size < sth.Size {
		return fmt.Errorf("%w: %d durable entries but signed tree head covers %d",
			ErrStateRollback, state.Size, sth.Size)
	}
	// Entries beyond the head (persisted but not yet headed when the
	// process died) are legitimate, but the covered prefix must hash to
	// exactly what was signed.
	//
	// Threat-model boundary: the beyond-head tail is authenticated only
	// by its CRC framing, so an attacker with statedir write access
	// could append well-formed records there and have recovery re-sign
	// them. That attacker already holds the statedir's CA key in the
	// multi-process deployment, so no local check can beat them;
	// catching it needs a root of trust off this disk — the witness and
	// sealed-counter anchors.
	root, err := state.RootAt(sth.Size)
	if err != nil {
		return err
	}
	if root != sth.RootHash {
		return fmt.Errorf("%w: recomputed root at size %d does not match persisted tree head",
			ErrStateTampered, sth.Size)
	}
	a.mu.Lock()
	a.sth, a.have = sth, true
	a.mu.Unlock()
	return nil
}

// CommitHead atomically replaces the persisted head file.
func (a *sthAnchor) CommitHead(sth SignedTreeHead) error {
	if err := persistSTHFile(a.dir, sth, a.noSync); err != nil {
		return err
	}
	a.mu.Lock()
	a.sth, a.have = sth, true
	a.mu.Unlock()
	return nil
}

// Persisted returns the head loaded by CheckRecovery (or recorded by
// the latest CommitHead) and whether one exists — the store's
// resumption point.
func (a *sthAnchor) Persisted() (SignedTreeHead, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sth, a.have
}

// ---- witness-head anchor --------------------------------------------------

// WitnessAnchor anchors the log on a witness's persisted last-accepted
// head — the same statedir entry a gossiping witness
// (OpenWitnessState) keeps, so co-locating the log with one witness's
// state costs nothing extra. Because the witness statedir is separate
// from the log statedir, a consistent rewind of the log's segments and
// sth.json together is still caught here — unless the witness state was
// rewound too, which is the sealed anchor's job.
type WitnessAnchor struct {
	dir   *statedir.Dir
	entry string
	pub   *ecdsa.PublicKey

	mu   sync.Mutex
	last SignedTreeHead
	seen bool
}

// NewWitnessAnchor returns an anchor persisting heads under witness
// name in dir, verified against the log public key. A gossiping witness
// opened later with the same dir and name (OpenWitnessState) restores
// exactly the head this anchor recorded.
func NewWitnessAnchor(dir *statedir.Dir, name string, pub *ecdsa.PublicKey) *WitnessAnchor {
	return &WitnessAnchor{dir: dir, entry: witnessHeadFile(name), pub: pub}
}

// Name implements TrustAnchor.
func (a *WitnessAnchor) Name() string { return "witness-head" }

// CheckRecovery verifies the recovered state against the persisted
// witness head: the state must cover at least the remembered size and
// hash to the remembered root at that size.
func (a *WitnessAnchor) CheckRecovery(state *RecoveredState) error {
	data, err := a.dir.Read(a.entry)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first run: nothing remembered yet
	}
	if err != nil {
		return fmt.Errorf("translog: reading witness anchor head: %w", err)
	}
	var sth SignedTreeHead
	if err := json.Unmarshal(data, &sth); err != nil {
		return fmt.Errorf("%w: witness anchor head undecodable: %v", ErrStateCorrupt, err)
	}
	if err := sth.Verify(a.pub); err != nil {
		return fmt.Errorf("%w: witness anchor head signature invalid", ErrStateTampered)
	}
	if state.Size < sth.Size {
		return fmt.Errorf("%w: %d durable entries but witness anchor remembers a signed head covering %d",
			ErrStateRollback, state.Size, sth.Size)
	}
	root, err := state.RootAt(sth.Size)
	if err != nil {
		return err
	}
	if root != sth.RootHash {
		return fmt.Errorf("%w: recomputed root at size %d does not match witness anchor head",
			ErrStateTampered, sth.Size)
	}
	a.mu.Lock()
	a.last, a.seen = sth, true
	a.mu.Unlock()
	return nil
}

// CommitHead persists the newly committed head, never moving backwards.
func (a *WitnessAnchor) CommitHead(sth SignedTreeHead) error {
	a.mu.Lock()
	if a.seen && sth.Size < a.last.Size {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	data, err := json.Marshal(sth)
	if err != nil {
		return err
	}
	if err := a.dir.Write(a.entry, data); err != nil {
		return err
	}
	a.mu.Lock()
	a.last, a.seen = sth, true
	a.mu.Unlock()
	return nil
}

// ---- quorum witness anchor ------------------------------------------------

// witnessCosignedFile is the statedir entry a QuorumWitnessAnchor (and
// any party pinning quorum artifacts) persists CosignedHeads under.
func witnessCosignedFile(name string) string { return "witness-" + name + "-cosigned.json" }

// QuorumWitnessAnchor anchors the log on the persisted quorum artifact:
// the newest CosignedHead — head plus ≥Q witness co-signatures verified
// against the pinned roster — this deployment accepted. It subsumes the
// single-witness anchor's rollback protection (every committed head is
// persisted, co-signed or not) and adds the partitioned trust model: a
// recovery contradicting a head Q distinct partial auditors stood
// behind is convicting evidence against the whole store, not one
// witness's word.
type QuorumWitnessAnchor struct {
	dir    *statedir.Dir
	entry  string
	pub    *ecdsa.PublicKey
	roster *WitnessRoster

	mu   sync.Mutex
	last CosignedHead
	seen bool
}

// NewQuorumWitnessAnchor returns an anchor persisting quorum artifacts
// under witness name in dir, verified against the log public key and the
// pinned witness roster.
func NewQuorumWitnessAnchor(dir *statedir.Dir, name string, pub *ecdsa.PublicKey, roster *WitnessRoster) *QuorumWitnessAnchor {
	return &QuorumWitnessAnchor{dir: dir, entry: witnessCosignedFile(name), pub: pub, roster: roster}
}

// Name implements TrustAnchor.
func (a *QuorumWitnessAnchor) Name() string { return "quorum-witness" }

// CheckRecovery verifies the recovered state against the persisted
// artifact: the head signature must verify, every witness co-signature
// present must verify against the roster (a crash between commit and
// quorum legitimately leaves zero — quorum is not re-required here, but
// forged signatures are tampering), the state must cover at least the
// remembered size, and the covered prefix must hash to the remembered
// root.
func (a *QuorumWitnessAnchor) CheckRecovery(state *RecoveredState) error {
	data, err := a.dir.Read(a.entry)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first run: nothing remembered yet
	}
	if err != nil {
		return fmt.Errorf("translog: reading quorum anchor head: %w", err)
	}
	var ch CosignedHead
	if err := json.Unmarshal(data, &ch); err != nil {
		return fmt.Errorf("%w: quorum anchor head undecodable: %v", ErrStateCorrupt, err)
	}
	if err := ch.STH.Verify(a.pub); err != nil {
		return fmt.Errorf("%w: quorum anchor head signature invalid", ErrStateTampered)
	}
	for _, ws := range ch.Signatures {
		pub, ok := a.roster.Key(ws.Witness)
		if !ok {
			return fmt.Errorf("%w: quorum anchor carries a co-signature by %q outside the roster", ErrStateTampered, ws.Witness)
		}
		if ws.Size != ch.STH.Size || ws.RootHash != ch.STH.RootHash || ws.Verify(pub) != nil {
			return fmt.Errorf("%w: quorum anchor co-signature by %q invalid", ErrStateTampered, ws.Witness)
		}
	}
	if state.Size < ch.STH.Size {
		return fmt.Errorf("%w: %d durable entries but quorum anchor remembers a signed head covering %d",
			ErrStateRollback, state.Size, ch.STH.Size)
	}
	root, err := state.RootAt(ch.STH.Size)
	if err != nil {
		return err
	}
	if root != ch.STH.RootHash {
		return fmt.Errorf("%w: recomputed root at size %d does not match quorum anchor head",
			ErrStateTampered, ch.STH.Size)
	}
	a.mu.Lock()
	a.last, a.seen = ch, true
	a.mu.Unlock()
	return nil
}

// CommitHead persists the newly committed head with an empty signature
// set, never moving backwards and never discarding co-signatures already
// recorded for the same head. The co-signatures arrive asynchronously
// through Accept — rollback protection must not wait for them.
func (a *QuorumWitnessAnchor) CommitHead(sth SignedTreeHead) error {
	return a.record(CosignedHead{STH: sth})
}

// Accept records a verified quorum artifact. A head older than the
// remembered one is ignored; a *different root at the remembered size*
// is split-view evidence — the log showed the quorum one tree and this
// deployment another — and comes back as the self-certifying
// *ConflictError it is.
func (a *QuorumWitnessAnchor) Accept(ch *CosignedHead) error {
	if err := ch.Verify(a.pub, a.roster); err != nil {
		return err
	}
	return a.record(*ch)
}

// record is the shared never-backwards persist path. At equal size it
// keeps whichever entry carries more co-signatures and convicts on
// diverging roots.
func (a *QuorumWitnessAnchor) record(ch CosignedHead) error {
	a.mu.Lock()
	if a.seen {
		if ch.STH.Size < a.last.STH.Size {
			a.mu.Unlock()
			return nil
		}
		if ch.STH.Size == a.last.STH.Size {
			if ch.STH.RootHash != a.last.STH.RootHash {
				have := a.last.STH
				a.mu.Unlock()
				return &ConflictError{
					Kind: ErrSplitView, Have: have, Got: ch.STH,
					Detail: "quorum anchor holds a different root at this size",
				}
			}
			if len(ch.Signatures) <= len(a.last.Signatures) {
				a.mu.Unlock()
				return nil
			}
		}
	}
	a.mu.Unlock()
	data, err := json.Marshal(ch)
	if err != nil {
		return err
	}
	if err := a.dir.Write(a.entry, data); err != nil {
		return err
	}
	a.mu.Lock()
	a.last, a.seen = ch, true
	a.mu.Unlock()
	return nil
}

// Last returns the remembered artifact and whether one exists.
func (a *QuorumWitnessAnchor) Last() (CosignedHead, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last, a.seen
}
