package translog

import (
	"crypto"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hostForShard finds a host name mapping to the wanted shard slot — so
// tests can aim entries at specific streams without depending on what
// FNV happens to do to any one label.
func hostForShard(t *testing.T, shards, want int) string {
	t.Helper()
	for i := 0; i < 64*shards; i++ {
		h := fmt.Sprintf("host-%d", i)
		if ShardOf(h, shards) == want {
			return h
		}
	}
	t.Fatalf("no host label maps to shard %d of %d", want, shards)
	return ""
}

// hostEntries builds n deterministic entries spread across nHosts hosts,
// every type represented, issuances and revocations included.
func hostEntries(n, nHosts int) []Entry {
	rng := mrand.New(mrand.NewSource(int64(n)*31 + int64(nHosts)))
	out := make([]Entry, 0, n)
	types := []EntryType{EntryEnroll, EntryAttestOK, EntryAttestFail, EntryProvision}
	for len(out) < n {
		typ := types[rng.Intn(len(types))]
		e := Entry{
			Type:      typ,
			Timestamp: int64(1700000000000 + len(out)),
			Actor:     fmt.Sprintf("fw-%d", rng.Intn(32)),
			Host:      fmt.Sprintf("host-%d", rng.Intn(nHosts)),
			Detail:    "OK",
		}
		if typ == EntryEnroll || typ == EntryProvision {
			e.Serial = fmt.Sprint(500000 + len(out))
		}
		out = append(out, e)
		if len(out)%11 == 0 && len(out) < n {
			out = append(out, Entry{
				Type: EntryRevoke, Timestamp: int64(1700000000000 + len(out)),
				Actor: "vm", Serial: fmt.Sprint(500000 + len(out) - 1), Detail: "withdrawn",
			})
		}
	}
	return out[:n]
}

// shardedConfig is a sharded store with small segments so recovery
// interleaves many files per stream.
func shardedConfig(shards int) StoreConfig {
	return StoreConfig{Shards: shards, SegmentMaxBytes: 1024}
}

// TestShardedRoundTrip is the sharded headline property: a multi-host
// log over per-host segment streams survives close/reopen with the
// identical root, head, global entry order and serial lookups — and its
// root is bit-identical to a single-stream store fed the same sequence,
// because sharding changes the WAL layout, never the tree.
func TestShardedRoundTrip(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	entries := hostEntries(900, 6)

	l, err := OpenDurableLog(key, dir, shardedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, entries)
	rootBefore, err := l.RootAt(l.Size())
	if err != nil {
		t.Fatal(err)
	}
	sthBefore := l.STH()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The streams really are per-host: more than one stream exists.
	_, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(shardFirsts) < 2 {
		t.Fatalf("expected multiple shard streams, got %d", len(shardFirsts))
	}

	re, err := OpenDurableLog(key, dir, shardedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != uint64(len(entries)) {
		t.Fatalf("recovered %d entries, want %d", re.Size(), len(entries))
	}
	if got := re.Entries(0, re.Size()); !reflect.DeepEqual(got, entries) {
		t.Fatal("global entry order changed across sharded recovery")
	}
	rootAfter, err := re.RootAt(re.Size())
	if err != nil {
		t.Fatal(err)
	}
	if rootAfter != rootBefore {
		t.Fatal("root hash changed across sharded recovery")
	}
	sthAfter := re.STH()
	if sthAfter.Size != sthBefore.Size || sthAfter.RootHash != sthBefore.RootHash {
		t.Fatal("tree head changed across sharded recovery")
	}

	// Reference single-stream store over the same sequence: exact root.
	refDir := t.TempDir()
	ref, err := OpenDurableLog(key, refDir, StoreConfig{SegmentMaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	refRoot, err := ref.RootAt(ref.Size())
	if err != nil {
		t.Fatal(err)
	}
	if refRoot != rootAfter {
		t.Fatal("sharded root differs from single-stream root over the same entries")
	}

	// Serial lookups were rebuilt from the interleaved replay.
	for _, e := range entries {
		if e.Serial == "" {
			continue
		}
		pbWant, errWant := ref.ProveSerial(e.Serial)
		pbGot, errGot := re.ProveSerial(e.Serial)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("serial %s: sharded err %v, reference err %v", e.Serial, errGot, errWant)
		}
		if pbWant != nil && pbGot.Index != pbWant.Index {
			t.Fatalf("serial %s: sharded index %d, reference %d", e.Serial, pbGot.Index, pbWant.Index)
		}
	}
}

// countingSigner counts tree-head signatures, the per-cycle cost the
// sequencer is supposed to amortise across hosts.
type countingSigner struct {
	inner crypto.Signer
	n     atomic.Int64
}

func (s *countingSigner) Public() crypto.PublicKey { return s.inner.Public() }

func (s *countingSigner) Sign(r io.Reader, digest []byte, opts crypto.SignerOpts) ([]byte, error) {
	s.n.Add(1)
	return s.inner.Sign(r, digest, opts)
}

// TestSequencerMergesHostsIntoOneCycle pins the tentpole economics: four
// hosts' buffered batches commit under ONE merged Merkle batch — one
// tree-head signature — per sequencer cycle, not one per host.
func TestSequencerMergesHostsIntoOneCycle(t *testing.T) {
	cs := &countingSigner{inner: testSigner(t)}
	l, err := NewLog(cs)
	if err != nil {
		t.Fatal(err)
	}
	sa := NewShardedAppender(l, ShardedAppenderConfig{
		Shards: 4, MaxBatch: 1024, FlushInterval: time.Hour,
	})
	defer sa.Close()

	before := cs.n.Load() // genesis head
	const perHost = 50
	for h := 0; h < 4; h++ {
		host := hostForShard(t, 4, h)
		for i := 0; i < perHost; i++ {
			if err := sa.Append(Entry{Type: EntryAttestOK, Timestamp: int64(i), Actor: "fw", Host: host, Detail: "OK"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sa.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != 4*perHost {
		t.Fatalf("committed %d entries, want %d", got, 4*perHost)
	}
	if signs := cs.n.Load() - before; signs != 1 {
		t.Fatalf("4 hosts' batches cost %d tree-head signatures, want 1 merged cycle", signs)
	}
	// Global order interleaves the shards round-robin but stays total:
	// indices 0..N-1 with no gaps, every entry present exactly once.
	seen := map[string]int{}
	for _, e := range l.Entries(0, l.Size()) {
		seen[e.Host]++
	}
	for h := 0; h < 4; h++ {
		host := hostForShard(t, 4, h)
		if seen[host] != perHost {
			t.Fatalf("host %s has %d committed entries, want %d", host, seen[host], perHost)
		}
	}
}

// TestShardedAppenderDurable runs the sharded appender over a sharded
// durable store end to end and checks the acknowledged entries are on
// disk after a reopen.
func TestShardedAppenderDurable(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 4, SegmentMaxBytes: 4096, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sa := NewShardedAppender(l, ShardedAppenderConfig{MaxBatch: 64})
	if got := sa.Shards(); got != 4 {
		t.Fatalf("appender adopted %d shards from the store, want 4", got)
	}
	const total = 1000
	for i := 0; i < total; i++ {
		e := Entry{Type: EntryAttestOK, Timestamp: int64(i), Actor: fmt.Sprintf("fw-%d", i), Host: fmt.Sprintf("host-%d", i%5), Detail: "OK"}
		if err := sa.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableLog(key, dir, StoreConfig{Shards: 4, SegmentMaxBytes: 4096, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Size() != total {
		t.Fatalf("recovered %d entries, want %d", re.Size(), total)
	}
}

// TestShardedTornTailPerStream tears the tail record of ONE stream: only
// that stream's torn record is cut, every intact entry (other streams
// included) survives, and appends resume cleanly.
func TestShardedTornTailPerStream(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, shardedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	entries := hostEntries(120, 5)
	appendAll(t, l, entries)
	root, err := l.RootAt(l.Size())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn write on one stream's newest segment.
	_, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for shard, firsts := range shardFirsts {
		victim = filepath.Join(dir, shardSegmentName(shard, firsts[len(firsts)-1]))
		break
	}
	f, err := os.OpenFile(victim, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenDurableLog(key, dir, shardedConfig(3))
	if err != nil {
		t.Fatalf("per-stream torn tail not recovered: %v", err)
	}
	if re.Size() != uint64(len(entries)) {
		t.Fatalf("recovered %d entries, want %d", re.Size(), len(entries))
	}
	if got, _ := re.RootAt(re.Size()); got != root {
		t.Fatal("root changed after per-stream torn-tail recovery")
	}
	if _, err := re.Append(Entry{Type: EntryAttestOK, Actor: "fw-post", Host: "host-1", Detail: "OK"}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDurableLog(key, dir, shardedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Size() != uint64(len(entries))+1 {
		t.Fatalf("size %d after post-truncation append, want %d", again.Size(), len(entries)+1)
	}
}

// TestShardedCrashMidCycleTrimsToPrefix simulates the sharded crash
// window: a cycle's records land in some streams but not others before
// the head is persisted, leaving index gaps beyond the head. Recovery
// must keep the contiguous prefix, trim the gapped remains, and resume.
func TestShardedCrashMidCycleTrimsToPrefix(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 2, SegmentMaxBytes: 1 << 20}
	l, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hostA, hostB := hostForShard(t, 2, 0), hostForShard(t, 2, 1)
	var committed []Entry
	for i := 0; i < 10; i++ {
		host := hostA
		if i%2 == 1 {
			host = hostB
		}
		committed = append(committed, Entry{Type: EntryAttestOK, Timestamp: int64(i), Actor: "fw", Host: host, Detail: "OK"})
	}
	if _, err := l.AppendBatch(committed); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The "crash": the next cycle would have been indices 10,11,12 —
	// 10 (shard 0) and 12 (shard 0) land, 11 (shard 1) never does.
	mk := func(i int, host string) Entry {
		return Entry{Type: EntryAttestOK, Timestamp: int64(100 + i), Actor: "fw-crash", Host: host, Detail: "OK"}
	}
	appendRaw := func(shard int, index uint64, e Entry) {
		t.Helper()
		_, shardFirsts, err := listAllSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		firsts := shardFirsts[shard]
		path := filepath.Join(dir, shardSegmentName(shard, firsts[len(firsts)-1]))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(appendIndexedRecord(nil, index, e.Marshal())); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendRaw(0, 10, mk(0, hostA))
	appendRaw(0, 12, mk(2, hostA))

	re, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatalf("crash-torn cycle refused: %v", err)
	}
	// Index 10 is contiguous with the head and fully durable: kept.
	// Index 12 sits past the gap at 11: trimmed.
	if re.Size() != 11 {
		t.Fatalf("recovered %d entries, want 11 (contiguous prefix)", re.Size())
	}
	got, err := re.Entry(10)
	if err != nil || got.Actor != "fw-crash" {
		t.Fatalf("entry 10 = %+v (%v), want the surviving crash record", got, err)
	}
	sth := re.STH()
	if sth.Size != 11 {
		t.Fatalf("re-signed head covers %d, want 11", sth.Size)
	}
	// Appends resume on the trimmed boundary and survive another open.
	if _, err := re.Append(mk(9, hostB)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Size() != 12 {
		t.Fatalf("size %d after post-trim append, want 12", again.Size())
	}
}

// TestShardedSingleStreamRollbackDetected deletes one stream's newest
// segment after everything was committed: the interleaved replay comes
// up short of the persisted head and the open must refuse as rollback —
// per-shard history is still globally protected.
func TestShardedSingleStreamRollbackDetected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, shardedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, hostEntries(400, 6))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for shard, firsts := range shardFirsts {
		if len(firsts) < 2 {
			continue
		}
		if err := os.Remove(filepath.Join(dir, shardSegmentName(shard, firsts[len(firsts)-1]))); err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := OpenDurableLog(key, dir, shardedConfig(3)); !errors.Is(err, ErrStateRollback) {
		t.Fatalf("single-stream rewind: got %v, want ErrStateRollback", err)
	}
}

// TestShardedTamperDetected rewrites one entry in place (checksum fixed
// up, global index preserved): only the root comparison can catch it.
func TestShardedTamperDetected(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, hostEntries(60, 4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for shard, firsts := range shardFirsts {
		seg = filepath.Join(dir, shardSegmentName(shard, firsts[0]))
		break
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, err := scanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	index, body, err := splitIndexedRecord(payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	victim, err := unmarshalEntry(body)
	if err != nil {
		t.Fatal(err)
	}
	victim.Actor = "ghost"
	payloads[1] = indexedPayload(index, victim.Marshal())
	var rewritten []byte
	for _, p := range payloads {
		rewritten = appendRecord(rewritten, p)
	}
	if err := os.WriteFile(seg, rewritten, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{Shards: 2}); !errors.Is(err, ErrStateTampered) {
		t.Fatalf("tampered sharded store: got %v, want ErrStateTampered", err)
	}
}

// TestShardedDuplicateIndexCorrupt: the same global index in two streams
// can never come from the sequencer — it is damage, not a crash.
func TestShardedDuplicateIndexCorrupt(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hostA, hostB := hostForShard(t, 2, 0), hostForShard(t, 2, 1)
	if _, err := l.AppendBatch([]Entry{
		{Type: EntryAttestOK, Timestamp: 1, Actor: "fw", Host: hostA, Detail: "OK"},
		{Type: EntryAttestOK, Timestamp: 2, Actor: "fw", Host: hostB, Detail: "OK"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge shard 1's record to claim shard 0's global index 0.
	e := Entry{Type: EntryAttestOK, Timestamp: 2, Actor: "fw", Host: hostB, Detail: "OK"}
	forged := appendIndexedRecord(nil, 0, e.Marshal())
	path := filepath.Join(dir, shardSegmentName(1, 0))
	if err := os.WriteFile(path, forged, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{Shards: 2}); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("duplicate global index: got %v, want ErrStateCorrupt", err)
	}
}

// TestMixedLayoutRefused: a directory holding both single-stream and
// sharded segments is no layout at all — refuse it loudly.
func TestMixedLayoutRefused(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(5))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	e := Entry{Type: EntryAttestOK, Timestamp: 9, Actor: "fw", Host: "host-9", Detail: "OK"}
	if err := os.WriteFile(filepath.Join(dir, shardSegmentName(0, 0)),
		appendIndexedRecord(nil, 5, e.Marshal()), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableLog(key, dir, StoreConfig{}); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("mixed layouts: got %v, want ErrStateCorrupt", err)
	}
}

// TestShardedLayoutStickiness: opening an existing single-stream store
// with Shards configured keeps the single stream — the layout is fixed
// at store creation, never silently migrated.
func TestShardedLayoutStickiness(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(10))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableLog(key, dir, StoreConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, re, hostEntries(10, 3))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	firsts, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(shardFirsts) != 0 {
		t.Fatalf("existing single-stream store grew %d shard streams", len(shardFirsts))
	}
	if len(firsts) == 0 {
		t.Fatal("single stream vanished")
	}
}

// TestShardCountPinnedAtCreation: the stream count a sharded store was
// created with survives reopens under a *different* StoreConfig.Shards
// — the host→stream routing never silently remaps, and the pinned count
// is visible through Log.StoreShards.
func TestShardCountPinnedAtCreation(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.StoreShards(); got != 8 {
		t.Fatalf("StoreShards = %d at creation, want 8", got)
	}
	appendAll(t, l, hostEntries(100, 6))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 4, 16} {
		re, err := OpenDurableLog(key, dir, StoreConfig{Shards: shards})
		if err != nil {
			t.Fatalf("reopen with Shards=%d: %v", shards, err)
		}
		if got := re.StoreShards(); got != 8 {
			t.Fatalf("reopen with Shards=%d remapped the store to %d streams, want the pinned 8", shards, got)
		}
		appendAll(t, re, hostEntries(20, 6))
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Every stream on disk stays within the pinned slot range.
	_, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for shard := range shardFirsts {
		if shard >= 8 {
			t.Fatalf("records landed in stream %d, beyond the pinned 8 slots", shard)
		}
	}
	// And the final state replays cleanly.
	again, err := OpenDurableLog(key, dir, StoreConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Size() != 160 {
		t.Fatalf("recovered %d entries, want 160", again.Size())
	}
}

// TestShardCountLimit: the segment naming holds 4 shard digits, so a
// config beyond that must refuse up front — a slot the file name cannot
// carry would write segments recovery silently ignores.
func TestShardCountLimit(t *testing.T) {
	key := testSigner(t)
	if _, err := OpenDurableLog(key, t.TempDir(), StoreConfig{Shards: 10000}); err == nil {
		t.Fatal("10000-shard store opened; its streams would be unnameable")
	}
	l, err := OpenDurableLog(key, t.TempDir(), StoreConfig{Shards: 9999})
	if err != nil {
		t.Fatalf("max shard count refused: %v", err)
	}
	l.Close()
}

// TestShardedOversizeEntryRefused: the sharded frame reserves 8 bytes
// for the global index, so the entry bound is tighter — and refusal must
// come before any byte is written, leaving the store healthy.
func TestShardedOversizeEntryRefused(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	huge := Entry{Type: EntryAttestFail, Actor: "fw-big", Host: "host-0", Detail: string(make([]byte, maxShardedEntryBytes+1))}
	if _, err := l.Append(huge); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("oversize sharded entry: got %v, want ErrEntryTooLarge", err)
	}
	if _, err := l.Append(Entry{Type: EntryAttestOK, Actor: "fw-ok", Host: "host-0", Detail: "OK"}); err != nil {
		t.Fatalf("append after refused oversize: %v", err)
	}
}

// TestShardSegmentNameRoundTrip pins the sharded file-name encoding and
// its disjointness from the single-stream names.
func TestShardSegmentNameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		first uint64
	}{{0, 0}, {3, 1}, {15, 255}, {9999, 1 << 40}} {
		shard, first, ok := parseShardSegmentName(shardSegmentName(tc.shard, tc.first))
		if !ok || shard != tc.shard || first != tc.first {
			t.Fatalf("round trip (%d,%d) -> %q -> (%d,%d,%v)",
				tc.shard, tc.first, shardSegmentName(tc.shard, tc.first), shard, first, ok)
		}
	}
	// Single-stream names never parse as sharded and vice versa.
	if _, _, ok := parseShardSegmentName(segmentName(7)); ok {
		t.Fatal("single-stream name parsed as sharded")
	}
	if _, ok := parseSegmentName(shardSegmentName(1, 7)); ok {
		t.Fatal("sharded name parsed as single-stream")
	}
	for _, bad := range []string{"seg-h12-00000000000000000007.wal", "seg-h0001-7.wal", "seg-h0001-0000000000000000000x.wal"} {
		if _, _, ok := parseShardSegmentName(bad); ok {
			t.Fatalf("%q parsed as a sharded segment", bad)
		}
	}
}

// TestShardOfStability pins the host→shard mapping: deterministic,
// in-range, and spreading real host labels across slots.
func TestShardOfStability(t *testing.T) {
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		h := fmt.Sprintf("host-%d", i)
		s := ShardOf(h, 16)
		if s < 0 || s >= 16 {
			t.Fatalf("ShardOf(%q,16) = %d out of range", h, s)
		}
		if s != ShardOf(h, 16) {
			t.Fatalf("ShardOf(%q) not deterministic", h)
		}
		used[s] = true
	}
	if len(used) < 8 {
		t.Fatalf("64 hosts landed on only %d of 16 shards", len(used))
	}
	if ShardOf("anything", 1) != 0 || ShardOf("", 4) < 0 {
		t.Fatal("degenerate shard counts mishandled")
	}
}

// TestProveSerialIssuanceIndexAcrossRecovery pins the O(1) proof-lookup
// fix: the serial→latest-issuance index is maintained on commit and
// rebuilt identically by both recovery layouts — re-provisioned serials
// prove at their NEWEST issuance index, revoked serials still refuse.
func TestProveSerialIssuanceIndexAcrossRecovery(t *testing.T) {
	for _, cfg := range []StoreConfig{{}, {Shards: 3}} {
		name := "single"
		if cfg.Shards > 1 {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			key := testSigner(t)
			dir := t.TempDir()
			l, err := OpenDurableLog(key, dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch := []Entry{
				{Type: EntryEnroll, Timestamp: 1, Actor: "fw-a", Host: "host-0", Serial: "7001"},
				{Type: EntryAttestOK, Timestamp: 2, Actor: "fw-a", Host: "host-0", Detail: "OK"},
				{Type: EntryProvision, Timestamp: 3, Actor: "fw-a", Host: "host-0", Serial: "7001"},
				{Type: EntryEnroll, Timestamp: 4, Actor: "fw-b", Host: "host-1", Serial: "7002"},
				{Type: EntryRevoke, Timestamp: 5, Actor: "fw-b", Serial: "7002"},
			}
			if _, err := l.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			check := func(t *testing.T, log *Log) {
				t.Helper()
				pb, err := log.ProveSerial("7001")
				if err != nil {
					t.Fatal(err)
				}
				// The provision at index 2 supersedes the enroll at 0.
				if pb.Index != 2 || pb.Entry.Type != EntryProvision {
					t.Fatalf("serial 7001 proved at index %d (%v), want the provision at 2", pb.Index, pb.Entry.Type)
				}
				if err := pb.Verify(&key.PublicKey); err != nil {
					t.Fatal(err)
				}
				if _, err := log.ProveSerial("7002"); !errors.Is(err, ErrLogRevoked) {
					t.Fatalf("revoked serial: got %v, want ErrLogRevoked", err)
				}
				if _, err := log.ProveSerial("nope"); !errors.Is(err, ErrNotLogged) {
					t.Fatalf("unknown serial: got %v, want ErrNotLogged", err)
				}
			}
			check(t, l)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenDurableLog(key, dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			check(t, re)
		})
	}
}

// TestShardedFlushWaitsOutFinalCommit pins the PR-3 Flush/Close
// guarantee for the sharded path: with the appender closed but the final
// cycle not yet committed, Flush must wait the cycle out. The sequencer
// goroutine is not started — the test plays its role deterministically.
func TestShardedFlushWaitsOutFinalCommit(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	sa := &ShardedAppender{
		log:       l,
		shards:    []*hostShard{{}, {}},
		maxBatch:  4,
		interval:  time.Hour,
		workers:   1,
		shardInst: shardInstruments(2),
		slowLog:   func(string, ...any) {},
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	sa.idle = sync.NewCond(&sa.mu)
	sa.shards[0].pending = []Entry{{Type: EntryAttestOK, Actor: "late", Host: "host-0", Detail: "OK"}}
	sa.shards[0].closed = true
	sa.shards[1].closed = true
	sa.closed = true
	close(sa.done)

	flushed := make(chan error, 1)
	go func() { flushed <- sa.Flush() }()
	select {
	case <-flushed:
		t.Fatalf("Flush returned before the final cycle landed (%d entries committed)", l.Size())
	case <-time.After(100 * time.Millisecond):
	}
	sa.commitCycle() // the sequencer's final cycle
	if err := <-flushed; err != nil {
		t.Fatalf("flush: %v", err)
	}
	if l.Size() != 1 {
		t.Fatalf("final cycle not committed: size %d", l.Size())
	}
}

// TestShardedFlushCloseStress is the -race satellite: 16 producer
// goroutines across 4 hosts hammer the sharded appender while the
// sequencer commits and Flush/Close race in, over a sharded durable
// store. Every entry accepted before a Flush must be committed when that
// Flush returns; every accepted entry must be durable at the end.
func TestShardedFlushCloseStress(t *testing.T) {
	key := testSigner(t)
	for iter := 0; iter < 8; iter++ {
		dir := t.TempDir()
		l, err := OpenDurableLog(slowSigner{inner: key, delay: 50 * time.Microsecond}, dir,
			StoreConfig{Shards: 4, SegmentMaxBytes: 4096, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		sa := NewShardedAppender(l, ShardedAppenderConfig{Shards: 4, MaxBatch: 8, FlushInterval: time.Millisecond})

		const producers = 16
		var appended atomic.Uint64
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				host := fmt.Sprintf("host-%d", p%4)
				for i := 0; i < 100; i++ {
					e := Entry{Type: EntryAttestOK, Timestamp: int64(i), Actor: fmt.Sprintf("fw-%d-%d", p, i), Host: host, Detail: "OK"}
					if err := sa.Append(e); err != nil {
						if !errors.Is(err, ErrClosedLog) {
							t.Errorf("append: %v", err)
						}
						return
					}
					appended.Add(1)
					if i%33 == 0 {
						if err := sa.Flush(); err != nil {
							t.Errorf("flush: %v", err)
							return
						}
					}
				}
			}(p)
		}
		closer := make(chan struct{})
		go func() {
			defer close(closer)
			time.Sleep(time.Duration(iter) * 200 * time.Microsecond)
			if err := sa.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()

		// Pre-Flush entries must be committed when Flush returns,
		// whether the appender is open, closing or closed.
		time.Sleep(time.Duration(iter%5) * 100 * time.Microsecond)
		n := appended.Load()
		if err := sa.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if got := l.Size(); got < n {
			t.Fatalf("iter %d: Flush returned with %d of %d pre-Flush entries committed", iter, got, n)
		}
		wg.Wait()
		<-closer
		if err := sa.Flush(); err != nil {
			t.Fatalf("post-close flush: %v", err)
		}
		if got, want := l.Size(), appended.Load(); got != want {
			t.Fatalf("iter %d: %d committed, %d successfully appended", iter, got, want)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurableLog(key, dir, StoreConfig{Shards: 4, SegmentMaxBytes: 4096, NoSync: true})
		if err != nil {
			t.Fatalf("iter %d: reopen: %v", iter, err)
		}
		if got := re.Size(); got != appended.Load() {
			t.Fatalf("iter %d: %d durable, %d acknowledged", iter, got, appended.Load())
		}
		re.Close()
	}
}
