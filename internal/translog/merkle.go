package translog

import (
	"crypto/sha256"
	"errors"
	"math/bits"
	"sync"
)

// Hash is a Merkle tree node hash.
type Hash [sha256.Size]byte

// Domain-separation prefixes (RFC 6962 §2.1): leaves and interior nodes
// hash under distinct domains so a leaf can never be reinterpreted as a
// node (second-preimage resistance of the tree structure).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one canonical-encoded entry into its leaf.
func LeafHash(data []byte) Hash {
	buf := make([]byte, 1+len(data))
	buf[0] = leafPrefix
	copy(buf[1:], data)
	return sha256.Sum256(buf)
}

func nodeHash(l, r Hash) Hash {
	var buf [1 + 2*sha256.Size]byte
	buf[0] = nodePrefix
	copy(buf[1:], l[:])
	copy(buf[1+sha256.Size:], r[:])
	return sha256.Sum256(buf[:])
}

// emptyRoot is the hash of the empty tree (RFC 6962: SHA-256 of the empty
// string).
func emptyRoot() Hash { return sha256.Sum256(nil) }

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n (n must be > 1) — the split point k of RFC 6962's recursions.
func largestPowerOfTwoBelow(n uint64) uint64 {
	return 1 << (bits.Len64(n-1) - 1)
}

// tree is an append-only Merkle tree over leaf hashes, stored as one
// hash array per level: levels[0] holds the leaves and levels[k][i] is
// the root of the complete subtree over leaves [i·2^k, (i+1)·2^k). Every
// complete range RFC 6962's recursions visit is aligned, so it resolves
// to a single array lookup; appends only extend the right spine —
// O(1) amortised hashing per leaf with no cache invalidation, which is
// what keeps batched commits cheap as the log grows.
type tree struct {
	mu     sync.RWMutex
	levels [][]Hash
}

func newTree() *tree {
	return &tree{levels: [][]Hash{nil}}
}

// size returns the number of leaves.
func (t *tree) size() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return uint64(len(t.levels[0]))
}

// append adds leaf hashes and returns the new size.
func (t *tree) append(hashes ...Hash) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range hashes {
		t.levels[0] = append(t.levels[0], h)
		// Complete freshly-paired subtrees bottom-up along the right
		// spine.
		i := uint64(len(t.levels[0]) - 1)
		for k := 0; i&1 == 1; k++ {
			if k+1 >= len(t.levels) {
				t.levels = append(t.levels, nil)
			}
			t.levels[k+1] = append(t.levels[k+1], nodeHash(t.levels[k][i-1], t.levels[k][i]))
			i >>= 1
		}
	}
	return uint64(len(t.levels[0]))
}

// appendParallel adds a large batch of leaf hashes with the interior
// hashing fanned across workers. After n leaves level k always holds
// exactly n>>k nodes, so the batch's new nodes at each level are a
// contiguous data-parallel range computed from pairs one level down —
// the same array sequential append builds, without its per-leaf spine
// walk serialising the merged cycles the sequencer commits.
func (t *tree) appendParallel(hashes []Hash, workers int) uint64 {
	const chunk = 512
	if workers <= 1 || len(hashes) < 2*chunk {
		return t.append(hashes...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.levels[0] = append(t.levels[0], hashes...)
	for k := 0; len(t.levels[k])/2 > 0; k++ {
		if k+1 >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		below := t.levels[k]
		have := len(t.levels[k+1])
		want := len(below) / 2
		if want <= have {
			continue
		}
		nodes := t.levels[k+1]
		if cap(nodes) < want {
			// Grow with doubling headroom in one shot — append's
			// temp-slice growth would reallocate every batch.
			grown := make([]Hash, want, max(want, 2*cap(nodes)))
			copy(grown, nodes)
			nodes = grown
		} else {
			nodes = nodes[:want]
		}
		if want-have < 2*chunk {
			for i := have; i < want; i++ {
				nodes[i] = nodeHash(below[2*i], below[2*i+1])
			}
		} else {
			var wg sync.WaitGroup
			for lo := have; lo < want; lo += chunk {
				hi := lo + chunk
				if hi > want {
					hi = want
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						nodes[i] = nodeHash(below[2*i], below[2*i+1])
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		t.levels[k+1] = nodes
	}
	return uint64(len(t.levels[0]))
}

// truncate discards leaves beyond size n — the rollback of a failed
// commit. Level k always holds exactly n>>k nodes for n leaves, so the
// inverse of append is a per-level truncation.
func (t *tree) truncate(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.levels {
		if keep := n >> uint(k); uint64(len(t.levels[k])) > keep {
			t.levels[k] = t.levels[k][:keep]
		}
	}
}

// rootAt computes MTH(D[0:n]) for any historical size n ≤ size.
func (t *tree) rootAt(n uint64) (Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n > uint64(len(t.levels[0])) {
		return Hash{}, errors.New("translog: tree size out of range")
	}
	if n == 0 {
		return emptyRoot(), nil
	}
	return t.subtree(0, n), nil
}

// subtree computes MTH(D[lo:hi]) under t.mu. Complete aligned ranges are
// direct level lookups; only the ragged right edge recurses.
func (t *tree) subtree(lo, hi uint64) Hash {
	n := hi - lo
	if n == 1 {
		return t.levels[0][lo]
	}
	if n&(n-1) == 0 && lo&(n-1) == 0 {
		return t.levels[bits.TrailingZeros64(n)][lo>>uint(bits.TrailingZeros64(n))]
	}
	k := largestPowerOfTwoBelow(n)
	return nodeHash(t.subtree(lo, lo+k), t.subtree(lo+k, hi))
}

// inclusionProof returns the RFC 6962 audit path PATH(index, D[size]).
func (t *tree) inclusionProof(index, size uint64) ([]Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if size > uint64(len(t.levels[0])) {
		return nil, errors.New("translog: tree size out of range")
	}
	if index >= size {
		return nil, errors.New("translog: leaf index out of range")
	}
	return t.path(index, 0, size), nil
}

// path implements PATH(m, D[lo:hi]) with m relative to lo.
func (t *tree) path(m, lo, hi uint64) []Hash {
	n := hi - lo
	if n == 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(n)
	if m < k {
		return append(t.path(m, lo, lo+k), t.subtree(lo+k, hi))
	}
	return append(t.path(m-k, lo+k, hi), t.subtree(lo, lo+k))
}

// consistencyProof returns PROOF(first, D[second]) showing D[0:first] is a
// prefix of D[0:second].
func (t *tree) consistencyProof(first, second uint64) ([]Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if second > uint64(len(t.levels[0])) {
		return nil, errors.New("translog: tree size out of range")
	}
	if first == 0 || first > second {
		return nil, errors.New("translog: invalid consistency range")
	}
	if first == second {
		return nil, nil
	}
	return t.subproof(first, 0, second, true), nil
}

// subproof implements SUBPROOF(m, D[lo:hi], b) with m relative to lo.
func (t *tree) subproof(m, lo, hi uint64, complete bool) []Hash {
	n := hi - lo
	if m == n {
		if complete {
			return nil
		}
		return []Hash{t.subtree(lo, hi)}
	}
	k := largestPowerOfTwoBelow(n)
	if m <= k {
		return append(t.subproof(m, lo, lo+k, complete), t.subtree(lo+k, hi))
	}
	return append(t.subproof(m-k, lo+k, hi, false), t.subtree(lo, lo+k))
}

// Proof verification is stateless: auditors hold only hashes, sizes and
// the signed roots.

// ErrProofInvalid reports a proof that does not connect the claimed data
// to the claimed root.
var ErrProofInvalid = errors.New("translog: proof does not verify")

// VerifyInclusion checks that leaf (already leaf-hashed) is the entry at
// index in the tree of the given size with the given root (RFC 9162
// §2.1.3.2).
func VerifyInclusion(leaf Hash, index, size uint64, proof []Hash, root Hash) error {
	if index >= size {
		return ErrProofInvalid
	}
	fn, sn := index, size-1
	r := leaf
	for _, p := range proof {
		if sn == 0 {
			return ErrProofInvalid
		}
		if fn&1 == 1 || fn == sn {
			r = nodeHash(p, r)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 || r != root {
		return ErrProofInvalid
	}
	return nil
}

// VerifyConsistency checks that the tree of size first with root1 is a
// prefix of the tree of size second with root2 (RFC 9162 §2.1.4.2). A
// failure means the log presented two irreconcilable views — it rewrote
// or forked history.
func VerifyConsistency(first, second uint64, root1, root2 Hash, proof []Hash) error {
	if first > second {
		return ErrProofInvalid
	}
	if first == second {
		if len(proof) != 0 || root1 != root2 {
			return ErrProofInvalid
		}
		return nil
	}
	if first == 0 {
		// The empty tree is a prefix of everything; nothing to verify
		// beyond the (signed) roots themselves.
		if len(proof) != 0 || root1 != emptyRoot() {
			return ErrProofInvalid
		}
		return nil
	}
	path := proof
	if first&(first-1) == 0 {
		// first is a power of two: its root is a node of the second tree,
		// so the proof starts from root1 itself.
		path = append([]Hash{root1}, path...)
	}
	if len(path) == 0 {
		return ErrProofInvalid
	}
	fn, sn := first-1, second-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return ErrProofInvalid
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 || fr != root1 || sr != root2 {
		return ErrProofInvalid
	}
	return nil
}
