package translog

import (
	"crypto/sha256"
	"errors"
	"math/bits"
	"sync"
)

// Hash is a Merkle tree node hash.
type Hash [sha256.Size]byte

// Domain-separation prefixes (RFC 6962 §2.1): leaves and interior nodes
// hash under distinct domains so a leaf can never be reinterpreted as a
// node (second-preimage resistance of the tree structure).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one canonical-encoded entry into its leaf.
func LeafHash(data []byte) Hash { //lint:allow unusedexport client-side proof API: external auditors leaf-hash entries to call VerifyInclusion
	buf := make([]byte, 1+len(data))
	buf[0] = leafPrefix
	copy(buf[1:], data)
	return sha256.Sum256(buf)
}

func nodeHash(l, r Hash) Hash {
	var buf [1 + 2*sha256.Size]byte
	buf[0] = nodePrefix
	copy(buf[1:], l[:])
	copy(buf[1+sha256.Size:], r[:])
	return sha256.Sum256(buf[:])
}

// emptyRoot is the hash of the empty tree (RFC 6962: SHA-256 of the empty
// string).
func emptyRoot() Hash { return sha256.Sum256(nil) }

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n (n must be > 1) — the split point k of RFC 6962's recursions.
func largestPowerOfTwoBelow(n uint64) uint64 {
	return 1 << (bits.Len64(n-1) - 1)
}

// errColdRange reports a tree lookup that reached below the checkpoint
// boundary of a suffix-only tree: the nodes are not resident (they live
// in the checkpoint's frozen blocks and the cold archives). Callers at
// the Log layer hydrate the cold prefix and retry.
var errColdRange = errors.New("translog: range below the checkpoint is not resident")

// tree is an append-only Merkle tree over leaf hashes, stored as one
// hash array per level: levels[0] holds the leaves and levels[k][i] is
// the root of the complete subtree over leaves [i·2^k, (i+1)·2^k). Every
// complete range RFC 6962's recursions visit is aligned, so it resolves
// to a single array lookup; appends only extend the right spine —
// O(1) amortised hashing per leaf with no cache invalidation, which is
// what keeps batched commits cheap as the log grows.
//
// A tree opened from a checkpoint is a suffix tree: leaves below frozen
// are not resident, and level k stores only the nodes with global index
// ≥ off(k) — the frozen subtree roots of frozen's binary decomposition
// sit at exactly those boundary positions, so the per-level arrays stay
// contiguous and the append spine-walk pairs new nodes with frozen
// block roots with no special cases beyond the off(k) index shift.
// Every root, proof and consistency computation for ranges at or above
// frozen resolves exactly as in a full tree (the RFC recursions only
// visit the decomposition positions, which are resident); a lookup that
// needs interior cold nodes returns errColdRange, and splice() grafts a
// rebuilt cold prefix back in to lift the boundary.
type tree struct {
	mu     sync.RWMutex
	levels [][]Hash
	// frozen is the checkpoint boundary (0 for a full tree).
	frozen uint64
}

func newTree() *tree {
	return &tree{levels: [][]Hash{nil}}
}

// newTreeFromFrozen builds a suffix tree over a checkpoint at size
// frozen: blocks are the roots of frozen's binary decomposition,
// largest subtree first. The caller has verified they fold to the
// checkpointed root.
func newTreeFromFrozen(frozen uint64, blocks []Hash) *tree {
	if frozen == 0 {
		return newTree()
	}
	t := &tree{frozen: frozen, levels: make([][]Hash, bits.Len64(frozen))}
	bi := 0
	for k := len(t.levels) - 1; k >= 0; k-- {
		if frozen&(1<<uint(k)) != 0 {
			t.levels[k] = []Hash{blocks[bi]}
			bi++
		}
	}
	return t
}

// off returns the global node index where level k's stored array
// begins: everything below it is interior to the frozen prefix. The
// frozen block at level k (when bit k of frozen is set) sits at exactly
// this index, so the arrays are contiguous from here on.
func (t *tree) off(k int) uint64 {
	return 2 * (t.frozen >> uint(k+1))
}

// size returns the number of leaves.
func (t *tree) size() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sizeLocked()
}

func (t *tree) sizeLocked() uint64 {
	return t.off(0) + uint64(len(t.levels[0]))
}

// append adds leaf hashes and returns the new size.
func (t *tree) append(hashes ...Hash) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range hashes {
		t.levels[0] = append(t.levels[0], h)
		// Complete freshly-paired subtrees bottom-up along the right
		// spine. i is the new node's global index; the stored arrays
		// begin at off(k), which is always even, so an odd i pairs with
		// a resident i-1 (possibly a frozen block root).
		i := t.off(0) + uint64(len(t.levels[0])) - 1
		for k := 0; i&1 == 1; k++ {
			if k+1 >= len(t.levels) {
				t.levels = append(t.levels, nil)
			}
			o := t.off(k)
			t.levels[k+1] = append(t.levels[k+1], nodeHash(t.levels[k][i-1-o], t.levels[k][i-o]))
			i >>= 1
		}
	}
	return t.sizeLocked()
}

// appendParallel adds a large batch of leaf hashes with the interior
// hashing fanned across workers. After n leaves level k always holds
// exactly n>>k nodes, so the batch's new nodes at each level are a
// contiguous data-parallel range computed from pairs one level down —
// the same array sequential append builds, without its per-leaf spine
// walk serialising the merged cycles the sequencer commits.
func (t *tree) appendParallel(hashes []Hash, workers int) uint64 {
	const chunk = 512
	if workers <= 1 || len(hashes) < 2*chunk {
		return t.append(hashes...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.levels[0] = append(t.levels[0], hashes...)
	for k := 0; ; k++ {
		below := t.levels[k]
		oBelow := t.off(k)
		// Global node counts: want is how many level-k+1 nodes the
		// level-k pairs now support, have is how many already exist
		// (including any frozen block root the level started with).
		want := (oBelow + uint64(len(below))) / 2
		oUp := t.off(k + 1)
		have := oUp
		if k+1 < len(t.levels) {
			have += uint64(len(t.levels[k+1]))
		}
		if want <= have {
			break
		}
		if k+1 >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		lHave, lWant := int(have-oUp), int(want-oUp)
		nodes := t.levels[k+1]
		if cap(nodes) < lWant {
			// Grow with doubling headroom in one shot — append's
			// temp-slice growth would reallocate every batch.
			grown := make([]Hash, lWant, max(lWant, 2*cap(nodes)))
			copy(grown, nodes)
			nodes = grown
		} else {
			nodes = nodes[:lWant]
		}
		fill := func(lo, hi int) {
			for li := lo; li < hi; li++ {
				j := oUp + uint64(li) // global index at level k+1
				nodes[li] = nodeHash(below[2*j-oBelow], below[2*j+1-oBelow])
			}
		}
		if lWant-lHave < 2*chunk {
			fill(lHave, lWant)
		} else {
			var wg sync.WaitGroup
			for lo := lHave; lo < lWant; lo += chunk {
				hi := lo + chunk
				if hi > lWant {
					hi = lWant
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					fill(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		}
		t.levels[k+1] = nodes
	}
	return t.sizeLocked()
}

// truncate discards leaves beyond size n — the rollback of a failed
// commit. Level k always holds exactly the global nodes [off(k), n>>k)
// for n leaves, so the inverse of append is a per-level truncation.
// Callers never truncate below the frozen boundary: commits only ever
// roll back to a size the committed tree already reached, which is ≥
// frozen by construction.
func (t *tree) truncate(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.levels {
		keepGlobal := n >> uint(k)
		o := t.off(k)
		if keepGlobal < o {
			keepGlobal = o // defensive: never drop frozen block roots
		}
		if keep := keepGlobal - o; uint64(len(t.levels[k])) > keep {
			t.levels[k] = t.levels[k][:keep]
		}
	}
}

// rootAt computes MTH(D[0:n]) for any historical size n ≤ size. For a
// suffix tree, n must be ≥ the frozen boundary (the decomposition
// positions of any n ≥ frozen are resident); smaller n returns
// errColdRange.
func (t *tree) rootAt(n uint64) (Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n > t.sizeLocked() {
		return Hash{}, errors.New("translog: tree size out of range")
	}
	if n == 0 {
		return emptyRoot(), nil
	}
	return t.subtree(0, n)
}

// blocks returns the roots of n's binary decomposition, largest subtree
// first — the frozen block set a checkpoint at size n persists. n must
// be in [frozen, size].
func (t *tree) blocks(n uint64) ([]Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n > t.sizeLocked() {
		return nil, errors.New("translog: tree size out of range")
	}
	out := make([]Hash, 0, bits.OnesCount64(n))
	lo := uint64(0)
	for rem := n; rem > 0; {
		b := uint64(1) << uint(bits.Len64(rem)-1)
		h, err := t.subtree(lo, lo+b)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
		lo += b
		rem -= b
	}
	return out, nil
}

// splice grafts a rebuilt cold prefix into a suffix tree: prefix is the
// per-level node array of a full tree over exactly frozen leaves (the
// caller has verified its root against the checkpoint). After splice
// the tree is a full tree — every historical root and proof resolves.
func (t *tree) splice(prefix [][]Hash) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen == 0 {
		return
	}
	for k := range t.levels {
		o := t.off(k)
		if o == 0 {
			continue
		}
		var cold []Hash
		if k < len(prefix) {
			cold = prefix[k]
			if uint64(len(cold)) > o {
				cold = cold[:o] // the block at off(k) is already resident
			}
		}
		merged := make([]Hash, 0, int(o)+len(t.levels[k]))
		merged = append(merged, cold...)
		merged = append(merged, t.levels[k]...)
		t.levels[k] = merged
	}
	t.frozen = 0
}

// nodeFunc resolves the root hash of the complete subtree at tree level
// k whose global node index is idx (covering leaves [idx·2^k,
// (idx+1)·2^k)). The RFC 6962 recursions below are parameterized over it
// so the same code serves two node stores: the tree's resident level
// arrays (server side) and the client-side tile assembler, which
// reconstructs nodes from fetched tiles.
type nodeFunc func(k int, idx uint64) (Hash, error)

// nodeLocked resolves a node from the resident level arrays. Callers
// hold t.mu. A lookup interior to the frozen prefix returns
// errColdRange.
func (t *tree) nodeLocked(k int, idx uint64) (Hash, error) {
	o := t.off(k)
	if idx < o {
		return Hash{}, errColdRange
	}
	if k >= len(t.levels) || idx-o >= uint64(len(t.levels[k])) {
		return Hash{}, errors.New("translog: tree node out of range")
	}
	return t.levels[k][idx-o], nil
}

// nodes copies the stored node hashes at tree level k with global
// indices [lo, hi) — the tile extraction primitive. The copy happens
// under the tree's own read lock (never the log's commit lock) and
// performs zero hashing: every interior level is resident, so a tile is
// a pure memcpy of hashes the commits already computed. Indices below
// the frozen boundary report errColdRange for the caller to hydrate.
func (t *tree) nodes(k int, lo, hi uint64) ([]Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if k >= len(t.levels) || lo > hi {
		return nil, errors.New("translog: tree node out of range")
	}
	o := t.off(k)
	if lo < o {
		return nil, errColdRange
	}
	if hi-o > uint64(len(t.levels[k])) {
		return nil, errors.New("translog: tree node out of range")
	}
	out := make([]Hash, hi-lo)
	copy(out, t.levels[k][lo-o:hi-o])
	return out, nil
}

// merkleSubtree computes MTH(D[lo:hi]) over node. Complete aligned
// ranges are single node lookups; only the ragged right edge recurses.
func merkleSubtree(lo, hi uint64, node nodeFunc) (Hash, error) {
	n := hi - lo
	if n&(n-1) == 0 && lo&(n-1) == 0 {
		k := bits.TrailingZeros64(n)
		return node(k, lo>>uint(k))
	}
	k := largestPowerOfTwoBelow(n)
	l, err := merkleSubtree(lo, lo+k, node)
	if err != nil {
		return Hash{}, err
	}
	r, err := merkleSubtree(lo+k, hi, node)
	if err != nil {
		return Hash{}, err
	}
	return nodeHash(l, r), nil
}

// subtree computes MTH(D[lo:hi]) under t.mu.
func (t *tree) subtree(lo, hi uint64) (Hash, error) {
	return merkleSubtree(lo, hi, t.nodeLocked)
}

// inclusionProof returns the RFC 6962 audit path PATH(index, D[size]).
func (t *tree) inclusionProof(index, size uint64) ([]Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if size > t.sizeLocked() {
		return nil, errors.New("translog: tree size out of range")
	}
	if index >= size {
		return nil, errors.New("translog: leaf index out of range")
	}
	return merklePath(index, 0, size, t.nodeLocked)
}

// merklePath implements PATH(m, D[lo:hi]) with m relative to lo.
func merklePath(m, lo, hi uint64, node nodeFunc) ([]Hash, error) {
	n := hi - lo
	if n == 1 {
		return nil, nil
	}
	k := largestPowerOfTwoBelow(n)
	if m < k {
		p, err := merklePath(m, lo, lo+k, node)
		if err != nil {
			return nil, err
		}
		s, err := merkleSubtree(lo+k, hi, node)
		if err != nil {
			return nil, err
		}
		return append(p, s), nil
	}
	p, err := merklePath(m-k, lo+k, hi, node)
	if err != nil {
		return nil, err
	}
	s, err := merkleSubtree(lo, lo+k, node)
	if err != nil {
		return nil, err
	}
	return append(p, s), nil
}

// consistencyProof returns PROOF(first, D[second]) showing D[0:first] is a
// prefix of D[0:second].
func (t *tree) consistencyProof(first, second uint64) ([]Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if second > t.sizeLocked() {
		return nil, errors.New("translog: tree size out of range")
	}
	if first == 0 || first > second {
		return nil, errors.New("translog: invalid consistency range")
	}
	if first == second {
		return nil, nil
	}
	return merkleSubproof(first, 0, second, true, t.nodeLocked)
}

// merkleSubproof implements SUBPROOF(m, D[lo:hi], b) with m relative to
// lo.
func merkleSubproof(m, lo, hi uint64, complete bool, node nodeFunc) ([]Hash, error) {
	n := hi - lo
	if m == n {
		if complete {
			return nil, nil
		}
		s, err := merkleSubtree(lo, hi, node)
		if err != nil {
			return nil, err
		}
		return []Hash{s}, nil
	}
	k := largestPowerOfTwoBelow(n)
	if m <= k {
		p, err := merkleSubproof(m, lo, lo+k, complete, node)
		if err != nil {
			return nil, err
		}
		s, err := merkleSubtree(lo+k, hi, node)
		if err != nil {
			return nil, err
		}
		return append(p, s), nil
	}
	p, err := merkleSubproof(m-k, lo+k, hi, false, node)
	if err != nil {
		return nil, err
	}
	s, err := merkleSubtree(lo, lo+k, node)
	if err != nil {
		return nil, err
	}
	return append(p, s), nil
}

// Proof verification is stateless: auditors hold only hashes, sizes and
// the signed roots.

// ErrProofInvalid reports a proof that does not connect the claimed data
// to the claimed root.
var ErrProofInvalid = errors.New("translog: proof does not verify") //lint:allow unusedexport error contract of VerifyConsistency (used by the verifier) and VerifyInclusion

// VerifyInclusion checks that leaf (already leaf-hashed) is the entry at
// index in the tree of the given size with the given root (RFC 9162
// §2.1.3.2).
func VerifyInclusion(leaf Hash, index, size uint64, proof []Hash, root Hash) error { //lint:allow unusedexport client-side proof API paired with VerifyConsistency, which the verifier uses; README documents both
	if index >= size {
		return ErrProofInvalid
	}
	fn, sn := index, size-1
	r := leaf
	for _, p := range proof {
		if sn == 0 {
			return ErrProofInvalid
		}
		if fn&1 == 1 || fn == sn {
			r = nodeHash(p, r)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 || r != root {
		return ErrProofInvalid
	}
	return nil
}

// VerifyConsistency checks that the tree of size first with root1 is a
// prefix of the tree of size second with root2 (RFC 9162 §2.1.4.2). A
// failure means the log presented two irreconcilable views — it rewrote
// or forked history.
func VerifyConsistency(first, second uint64, root1, root2 Hash, proof []Hash) error {
	if first > second {
		return ErrProofInvalid
	}
	if first == second {
		if len(proof) != 0 || root1 != root2 {
			return ErrProofInvalid
		}
		return nil
	}
	if first == 0 {
		// The empty tree is a prefix of everything; nothing to verify
		// beyond the (signed) roots themselves.
		if len(proof) != 0 || root1 != emptyRoot() {
			return ErrProofInvalid
		}
		return nil
	}
	path := proof
	if first&(first-1) == 0 {
		// first is a power of two: its root is a node of the second tree,
		// so the proof starts from root1 itself.
		path = append([]Hash{root1}, path...)
	}
	if len(path) == 0 {
		return ErrProofInvalid
	}
	fn, sn := first-1, second-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return ErrProofInvalid
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 || fr != root1 || sr != root2 {
		return ErrProofInvalid
	}
	return nil
}
