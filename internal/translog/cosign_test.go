package translog

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// testWitnessKeys generates n named co-signing identities and the
// roster requiring quorum of them.
func testWitnessKeys(t *testing.T, n, quorum int) (map[string]*WitnessKey, *WitnessRoster) {
	t.Helper()
	keys := make(map[string]*WitnessKey, n)
	pubs := make(map[string]*ecdsa.PublicKey, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		keys[name] = NewWitnessKey(name, priv)
		pubs[name] = &priv.PublicKey
	}
	roster, err := NewWitnessRoster(quorum, pubs)
	if err != nil {
		t.Fatal(err)
	}
	return keys, roster
}

// signHead hand-signs a tree head with the log key — how tests
// manufacture the equivocating second head an honest log never serves.
func signHead(t *testing.T, key *ecdsa.PrivateKey, size uint64, root Hash, ts int64) SignedTreeHead {
	t.Helper()
	sth := SignedTreeHead{Size: size, RootHash: root, Timestamp: ts}
	digest := sth.signingDigest()
	sig, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
	if err != nil {
		t.Fatal(err)
	}
	sth.Signature = sig
	return sth
}

// cosignAll collects one co-signature from each named witness over sth.
func cosignAll(t *testing.T, keys map[string]*WitnessKey, names []string, sth SignedTreeHead) []WitnessSignature {
	t.Helper()
	sigs := make([]WitnessSignature, 0, len(names))
	for _, name := range names {
		ws, err := keys[name].Cosign(sth)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, ws)
	}
	return sigs
}

// TestCosignedHeadVerifyAdversarial drives the quorum artifact through
// every forgery the wire can carry: each must fail with its distinct
// errors.Is-able sentinel, and only an honest Q-of-N set may pass.
func TestCosignedHeadVerifyAdversarial(t *testing.T) {
	logKey := testSigner(t)
	keys, roster := testWitnessKeys(t, 4, 3)
	head := signHead(t, logKey, 9, Hash{0x11}, 1700000000000)
	other := signHead(t, logKey, 7, Hash{0x22}, 1700000000001)
	honest := cosignAll(t, keys, []string{"w0", "w1", "w2"}, head)

	outsider, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := NewWitnessKey("w1", outsider).Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	replayedName := honest[0]
	replayedName.Witness = "w1" // w0's bits relabeled: the digest binds the name, so this cannot verify as w1
	unknownSig, err := NewWitnessKey("intruder", outsider).Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	staleSig, err := keys["w2"].Cosign(other)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		ch   CosignedHead
		want error
	}{
		{"happy", CosignedHead{STH: head, Signatures: honest}, nil},
		{"forged-log-head", CosignedHead{STH: SignedTreeHead{Size: 9, RootHash: Hash{0x11}, Signature: []byte{1}}, Signatures: honest}, ErrBadSTH},
		{"forged-witness-sig", CosignedHead{STH: head, Signatures: []WitnessSignature{honest[0], forged, honest[2]}}, ErrCosignInvalid},
		{"replayed-under-other-name", CosignedHead{STH: head, Signatures: []WitnessSignature{honest[1], honest[2], replayedName}}, ErrCosignInvalid},
		{"replayed-from-older-head", CosignedHead{STH: head, Signatures: []WitnessSignature{honest[0], honest[1], staleSig}}, ErrCosignInvalid},
		{"duplicate-witness", CosignedHead{STH: head, Signatures: []WitnessSignature{honest[0], honest[0], honest[1]}}, ErrDuplicateWitness},
		{"unknown-witness", CosignedHead{STH: head, Signatures: []WitnessSignature{honest[0], honest[1], unknownSig}}, ErrUnknownWitness},
		{"quorum-short", CosignedHead{STH: head, Signatures: honest[:2]}, ErrQuorumNotReached},
		{"quorum-padded-with-duplicates", CosignedHead{STH: head, Signatures: []WitnessSignature{honest[0], honest[1], honest[1]}}, ErrDuplicateWitness},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ch.Verify(&logKey.PublicKey, roster)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("honest artifact refused: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestCosignCollectorAdversarial: the collector-side twins of the
// artifact checks — nothing forged, replayed, duplicated or unknown may
// touch collector state, and quorum is only announced once Q distinct
// witnesses stand behind one head.
func TestCosignCollectorAdversarial(t *testing.T) {
	logKey := testSigner(t)
	keys, roster := testWitnessKeys(t, 4, 3)
	col := NewCosignCollector(&logKey.PublicKey, roster)
	head := signHead(t, logKey, 5, Hash{0x33}, 1700000000000)

	if _, err := col.Cosigned(); !errors.Is(err, ErrQuorumNotReached) {
		t.Fatalf("empty collector: got %v, want ErrQuorumNotReached", err)
	}
	// A head the log never signed is refused outright.
	bogus := SignedTreeHead{Size: 5, RootHash: Hash{0x33}, Signature: []byte{0xbb}}
	ws, err := keys["w0"].Cosign(bogus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Submit(bogus, ws); !errors.Is(err, ErrBadSTH) {
		t.Fatalf("unsigned head accepted: %v", err)
	}
	// A signature that does not cover the submitted head is invalid even
	// when both halves are individually authentic.
	older := signHead(t, logKey, 3, Hash{0x44}, 1700000000000)
	staleSig, err := keys["w0"].Cosign(older)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Submit(head, staleSig); !errors.Is(err, ErrCosignInvalid) {
		t.Fatalf("mismatched signature accepted: %v", err)
	}
	// Outside the roster, or a forged roster signature: distinct refusals.
	outsider, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	unknownSig, err := NewWitnessKey("intruder", outsider).Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Submit(head, unknownSig); !errors.Is(err, ErrUnknownWitness) {
		t.Fatalf("unknown witness accepted: %v", err)
	}
	forged, err := NewWitnessKey("w1", outsider).Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Submit(head, forged); !errors.Is(err, ErrCosignInvalid) {
		t.Fatalf("forged signature accepted: %v", err)
	}

	// Honest quorum, one duplicate along the way.
	for i, name := range []string{"w0", "w1"} {
		ws, err := keys[name].Cosign(head)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := col.Submit(head, ws); err != nil || n != i+1 {
			t.Fatalf("submit %s: n=%d err=%v", name, n, err)
		}
	}
	dup, err := keys["w1"].Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := col.Submit(head, dup); !errors.Is(err, ErrDuplicateWitness) || n != 2 {
		t.Fatalf("duplicate: n=%d err=%v", n, err)
	}
	if _, err := col.Cosigned(); !errors.Is(err, ErrQuorumNotReached) {
		t.Fatalf("2 of 3 announced as quorum: %v", err)
	}
	ws2, err := keys["w2"].Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Submit(head, ws2); err != nil {
		t.Fatal(err)
	}
	ch, err := col.Cosigned()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Verify(&logKey.PublicKey, roster); err != nil {
		t.Fatalf("assembled artifact does not verify: %v", err)
	}
	if len(ch.Signatures) != 3 || ch.STH.Size != head.Size {
		t.Fatalf("artifact shape: %d sigs at size %d", len(ch.Signatures), ch.STH.Size)
	}
}

// TestCosignCollectorEquivocation: one witness co-signs two different
// roots at one size. The collector returns self-verifying evidence that
// convicts the witness (and latches it), and a second witness walking
// into the forked size gets the log-split ConflictError — also
// self-certifying, since the log signed both heads.
func TestCosignCollectorEquivocation(t *testing.T) {
	logKey := testSigner(t)
	keys, roster := testWitnessKeys(t, 3, 2)
	col := NewCosignCollector(&logKey.PublicKey, roster)
	headA := signHead(t, logKey, 6, Hash{0xaa}, 1700000000000)
	headB := signHead(t, logKey, 6, Hash{0xbb}, 1700000000001)

	wsA, err := keys["w0"].Cosign(headA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Submit(headA, wsA); err != nil {
		t.Fatal(err)
	}
	wsB, err := keys["w0"].Cosign(headB)
	if err != nil {
		t.Fatal(err)
	}
	_, err = col.Submit(headB, wsB)
	var ee *EquivocationError
	if !errors.As(err, &ee) || !errors.Is(err, ErrWitnessEquivocation) {
		t.Fatalf("equivocation not convicted: %v", err)
	}
	if err := ee.Verify(roster); err != nil {
		t.Fatalf("evidence does not verify: %v", err)
	}
	if !ee.SelfCertifying(roster) {
		t.Fatal("two verified roots at one size must be self-certifying")
	}
	if got := col.Equivocations(); len(got) != 1 || got[0].Witness != "w0" {
		t.Fatalf("evidence not latched: %+v", got)
	}
	// Tampered evidence proves nothing.
	bad := *ee
	bad.B.RootHash = Hash{0xcc}
	if bad.Verify(roster) == nil {
		t.Fatal("tampered evidence verified")
	}
	// An honest second witness submitting the forked head is told the
	// LOG split — evidence self-certifying under the log key alone.
	wsB1, err := keys["w1"].Cosign(headB)
	if err != nil {
		t.Fatal(err)
	}
	_, err = col.Submit(headB, wsB1)
	var ce *ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, ErrSplitView) {
		t.Fatalf("forked size not convicted as split view: %v", err)
	}
	if err := ce.Verify(&logKey.PublicKey); err != nil || !ce.SelfCertifying(&logKey.PublicKey) {
		t.Fatalf("split-view evidence not self-certifying: %v", err)
	}
}

// TestCosignHTTPRoundTrip pins the wire: every sentinel survives the
// cosign endpoints errors.Is-intact, and conviction evidence — witness
// equivocation and log split-view alike — crosses HTTP still verifying,
// mirroring the gossip fabricated-evidence hardening.
func TestCosignHTTPRoundTrip(t *testing.T) {
	logKey := testSigner(t)
	l, err := NewLog(logKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mixedEntries(4)); err != nil {
		t.Fatal(err)
	}
	keys, roster := testWitnessKeys(t, 3, 2)
	col := NewCosignCollector(&logKey.PublicKey, roster)
	mux := http.NewServeMux()
	cosignH := CosignHandler(col)
	mux.Handle("/translog/v1/cosign", cosignH)
	mux.Handle("/translog/v1/cosigned", cosignH)
	mux.Handle("/", Handler(l))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL, &logKey.PublicKey)

	head := l.STH()
	if _, err := client.Cosigned(); !errors.Is(err, ErrQuorumNotReached) {
		t.Fatalf("pre-quorum fetch: got %v, want ErrQuorumNotReached", err)
	}
	ws0, err := keys["w0"].Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := client.SubmitCosign(head, ws0); err != nil || n != 1 {
		t.Fatalf("first submission: n=%d err=%v", n, err)
	}
	if _, err := client.SubmitCosign(head, ws0); !errors.Is(err, ErrDuplicateWitness) {
		t.Fatalf("duplicate over HTTP: %v", err)
	}
	outsider, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	unknownSig, err := NewWitnessKey("intruder", outsider).Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitCosign(head, unknownSig); !errors.Is(err, ErrUnknownWitness) {
		t.Fatalf("unknown witness over HTTP: %v", err)
	}
	forged, err := NewWitnessKey("w1", outsider).Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitCosign(head, forged); !errors.Is(err, ErrCosignInvalid) {
		t.Fatalf("forged signature over HTTP: %v", err)
	}

	// The equivocation 409: w0 co-signs a second log-signed head at the
	// same size; the client must receive evidence it can verify against
	// its own pinned roster — taking nobody's word for the conviction.
	forkRoot := head.RootHash
	forkRoot[0] ^= 0xff
	forked := signHead(t, logKey, head.Size, forkRoot, head.Timestamp+1)
	wsFork, err := keys["w0"].Cosign(forked)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.SubmitCosign(forked, wsFork)
	var ee *EquivocationError
	if !errors.As(err, &ee) || !errors.Is(err, ErrWitnessEquivocation) {
		t.Fatalf("equivocation did not round-trip: %v", err)
	}
	if err := ee.Verify(roster); err != nil || !ee.SelfCertifying(roster) {
		t.Fatalf("round-tripped evidence does not verify: %v", err)
	}
	// And the log-split 409 for an honest witness on the forked head.
	wsFork1, err := keys["w1"].Cosign(forked)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.SubmitCosign(forked, wsFork1)
	var ce *ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, ErrSplitView) {
		t.Fatalf("log split did not round-trip: %v", err)
	}
	if !ce.SelfCertifying(&logKey.PublicKey) {
		t.Fatal("round-tripped split-view evidence not self-certifying")
	}

	// Quorum completes; the artifact crosses the wire and verifies.
	ws1, err := keys["w1"].Cosign(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitCosign(head, ws1); err != nil {
		t.Fatal(err)
	}
	ch, err := client.Cosigned()
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Verify(&logKey.PublicKey, roster); err != nil {
		t.Fatal(err)
	}
}

// staleProofSource replays one captured proof bundle forever — the
// stale-head path the quorum checker must bridge by consistency proof.
type staleProofSource struct{ pb *ProofBundle }

func (s *staleProofSource) ProveSerial(string) (*ProofBundle, error) {
	pb := *s.pb
	return &pb, nil
}

// TestQuorumCredentialChecker: the controller hook in quorum mode. A
// logged credential passes only once Q witnesses co-signed a head
// covering its proof; a proof against a head beyond anything co-signed
// is refused with ErrQuorumNotReached; an older proof head is bridged
// into the co-signed head by consistency proof.
func TestQuorumCredentialChecker(t *testing.T) {
	logKey := testSigner(t)
	l, err := NewLog(logKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Type: EntryEnroll, Timestamp: 1, Actor: "fw-0", Serial: "77"}); err != nil {
		t.Fatal(err)
	}
	keys, roster := testWitnessKeys(t, 3, 2)
	col := NewCosignCollector(&logKey.PublicKey, roster)
	check := NewQuorumCredentialChecker(&logKey.PublicKey, roster, l, l, col.Cosigned)

	// Logged, proven — but nobody co-signed yet: refused.
	if err := check(certWithSerial(77)); !errors.Is(err, ErrQuorumNotReached) {
		t.Fatalf("un-co-signed head accepted: %v", err)
	}
	head := l.STH()
	for _, name := range []string{"w0", "w1"} {
		ws, err := keys[name].Cosign(head)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.Submit(head, ws); err != nil {
			t.Fatal(err)
		}
	}
	if err := check(certWithSerial(77)); err != nil {
		t.Fatalf("quorum-covered credential refused: %v", err)
	}
	if err := check(certWithSerial(78)); err == nil {
		t.Fatal("unlogged credential accepted")
	}

	// The log grows past the co-signed head; the stale quorum artifact
	// no longer covers a fresh proof.
	stale := &staleProofSource{}
	if _, err := l.Append(Entry{Type: EntryEnroll, Timestamp: 2, Actor: "fw-1", Serial: "88"}); err != nil {
		t.Fatal(err)
	}
	if err := check(certWithSerial(88)); !errors.Is(err, ErrQuorumNotReached) {
		t.Fatalf("proof beyond the co-signed head accepted: %v", err)
	}
	// Capture the now-stale bundle for 77, then co-sign the grown head:
	// the stale bundle must bridge by consistency proof.
	stale.pb, err = l.ProveSerial("77")
	if err != nil {
		t.Fatal(err)
	}
	stale.pb.STH = head // the bundle as an auditor cached it before growth
	if proof, err := l.InclusionProof(stale.pb.Index, head.Size); err != nil {
		t.Fatal(err)
	} else {
		stale.pb.Proof = proof
	}
	grown := l.STH()
	for _, name := range []string{"w1", "w2"} {
		ws, err := keys[name].Cosign(grown)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.Submit(grown, ws); err != nil {
			t.Fatal(err)
		}
	}
	if err := check(certWithSerial(88)); err != nil {
		t.Fatalf("credential under the fresh quorum refused: %v", err)
	}
	staleCheck := NewQuorumCredentialChecker(&logKey.PublicKey, roster, stale, l, col.Cosigned)
	if err := staleCheck(certWithSerial(77)); err != nil {
		t.Fatalf("stale proof head not bridged into the co-signed head: %v", err)
	}
}

// TestOpenWitnessKeyPersistence: a witness restart signs as the same
// identity — the keypair is loaded, not regenerated, and the public
// half is republished for roster discovery.
func TestOpenWitnessKeyPersistence(t *testing.T) {
	dir := testStatedir(t)
	k1, err := OpenWitnessKey(dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := OpenWitnessKey(dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Public().Equal(k2.Public()) {
		t.Fatal("witness restart regenerated its co-signing key")
	}
	if _, err := OpenWitnessKey(dir, "w1"); err != nil {
		t.Fatal(err)
	}
	roster, err := LoadWitnessRoster(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := roster.Names(); len(got) != 2 || got[0] != "w0" || got[1] != "w1" {
		t.Fatalf("roster discovered %v", got)
	}
	pub, ok := roster.Key("w0")
	if !ok || !pub.Equal(k1.Public()) {
		t.Fatal("roster key does not match the witness's identity")
	}
}

// TestQuorumWitnessAnchor: the relying-party anchor over quorum
// artifacts — forward-only acceptance, split-view refusal, and the
// recovery checks that refuse a rolled-back or contradicting store.
func TestQuorumWitnessAnchor(t *testing.T) {
	logKey := testSigner(t)
	l, err := NewLog(logKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mixedEntries(3)); err != nil {
		t.Fatal(err)
	}
	keys, roster := testWitnessKeys(t, 3, 2)
	head := l.STH()
	artifact := func(sth SignedTreeHead, names ...string) *CosignedHead {
		return &CosignedHead{STH: sth, Signatures: cosignAll(t, keys, names, sth)}
	}
	dir := testStatedir(t)
	a := NewQuorumWitnessAnchor(dir, "anchor", &logKey.PublicKey, roster)

	// Below quorum the artifact is refused before it can be pinned.
	if err := a.Accept(artifact(head, "w0")); !errors.Is(err, ErrQuorumNotReached) {
		t.Fatalf("sub-quorum artifact accepted: %v", err)
	}
	if err := a.Accept(artifact(head, "w0", "w1")); err != nil {
		t.Fatal(err)
	}
	last, ok := a.Last()
	if !ok || last.STH.Size != head.Size {
		t.Fatalf("accepted artifact not pinned: %+v ok=%v", last, ok)
	}
	// Equal size, different root: split-view evidence, not adoption.
	forkRoot := head.RootHash
	forkRoot[0] ^= 0xff
	forked := signHead(t, logKey, head.Size, forkRoot, head.Timestamp+1)
	err = a.Accept(artifact(forked, "w1", "w2"))
	var ce *ConflictError
	if !errors.As(err, &ce) || !errors.Is(err, ErrSplitView) {
		t.Fatalf("forked quorum head accepted: %v", err)
	}
	// Growth moves the pin forward; an older quorum head is a no-op.
	if _, err := l.AppendBatch(mixedEntries(2)); err != nil {
		t.Fatal(err)
	}
	grown := l.STH()
	if err := a.Accept(artifact(grown, "w0", "w2")); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(artifact(head, "w0", "w1")); err != nil {
		t.Fatalf("stale quorum head should be ignored, not refused: %v", err)
	}
	if last, _ := a.Last(); last.STH.Size != grown.Size {
		t.Fatalf("pin moved backwards to %d", last.STH.Size)
	}

	// Recovery: a fresh anchor over the same statedir refuses a store
	// behind — or contradicting — the pinned quorum head.
	rootAt := func(n uint64) (Hash, error) { return l.RootAt(n) }
	re := NewQuorumWitnessAnchor(dir, "anchor", &logKey.PublicKey, roster)
	if err := re.CheckRecovery(&RecoveredState{Size: grown.Size, rootAt: rootAt}); err != nil {
		t.Fatalf("matching state refused: %v", err)
	}
	if err := re.CheckRecovery(&RecoveredState{Size: head.Size, rootAt: rootAt}); !errors.Is(err, ErrStateRollback) {
		t.Fatalf("rolled-back state: got %v, want ErrStateRollback", err)
	}
	tampered := &RecoveredState{Size: grown.Size, rootAt: func(n uint64) (Hash, error) { return Hash{0xde, 0xad}, nil }}
	if err := re.CheckRecovery(tampered); !errors.Is(err, ErrStateTampered) {
		t.Fatalf("contradicting state: got %v, want ErrStateTampered", err)
	}
	// A corrupted pin file is corrupt state, not silent acceptance.
	if err := dir.Write("witness-anchor-cosigned.json", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	corrupt := NewQuorumWitnessAnchor(dir, "anchor", &logKey.PublicKey, roster)
	if err := corrupt.CheckRecovery(&RecoveredState{Size: grown.Size, rootAt: rootAt}); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("corrupt pin: got %v, want ErrStateCorrupt", err)
	}
}
