package translog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk segment format. A segment is a flat sequence of records, each
// holding one canonical-encoded log entry:
//
//	uint32 length (big endian) ‖ uint32 CRC-32C of payload ‖ payload
//
// There is no segment header: the file name carries everything the
// recovery pass needs. seg-<first>.wal holds the entries starting at
// tree index <first> (20-digit zero-padded decimal, so lexical order is
// index order). Records never straddle segments, and every byte of a
// segment belongs to some record — any flipped bit lands in a length, a
// checksum or a payload, and each of those is detected on replay.

const (
	segmentSuffix = ".wal"
	segmentPrefix = "seg-"
	// recordHeaderLen is the length + checksum prefix.
	recordHeaderLen = 8
	// maxRecordBytes bounds a single entry's canonical encoding: recovery
	// rejects larger claimed lengths instead of allocating for them.
	maxRecordBytes = 1 << 20
	// defaultSegmentMaxBytes caps a segment before rotation.
	defaultSegmentMaxBytes = 1 << 20
)

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTornTail marks an incomplete final record: a crash mid-write, not
// corruption. The recovery pass truncates it; every other framing fault
// is ErrStateCorrupt.
var errTornTail = errors.New("translog: torn record at segment tail")

// segmentName renders the file name for the segment whose first entry
// has the given tree index.
func segmentName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segmentPrefix, first, segmentSuffix)
}

// parseSegmentName extracts the first-entry index from a segment file
// name, reporting ok=false for unrelated files.
func parseSegmentName(name string) (first uint64, ok bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if len(digits) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment first-indices present in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("translog: reading store dir: %w", err)
	}
	var firsts []uint64
	for _, de := range names {
		if first, ok := parseSegmentName(de.Name()); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// appendRecord frames one payload into dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// scanSegment decodes every record in data. clean is the byte offset of
// the end of the last intact record. A trailing partial record (fewer
// bytes than its header claims, or a header cut short) yields errTornTail
// with the intact prefix decoded; an impossible length or a checksum
// mismatch on a complete record yields ErrStateCorrupt — that is damage,
// not an interrupted write, and must never be silently dropped.
func scanSegment(data []byte) (payloads [][]byte, clean int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < recordHeaderLen {
			return payloads, off, errTornTail
		}
		n := binary.BigEndian.Uint32(data[off : off+4])
		if n > maxRecordBytes {
			return payloads, off, fmt.Errorf("%w: record length %d exceeds %d", ErrStateCorrupt, n, maxRecordBytes)
		}
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		body := data[off+recordHeaderLen:]
		if uint64(len(body)) < uint64(n) {
			return payloads, off, errTornTail
		}
		payload := body[:n]
		if crc32.Checksum(payload, crcTable) != sum {
			return payloads, off, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrStateCorrupt, off)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += recordHeaderLen + int(n)
	}
	return payloads, off, nil
}

// readSegment loads and scans one segment file.
func readSegment(path string) (payloads [][]byte, clean int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("translog: reading segment %s: %w", filepath.Base(path), err)
	}
	return scanSegment(data)
}
