package translog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk segment format. A segment is a flat sequence of records, each
// holding one canonical-encoded log entry:
//
//	uint32 length (big endian) ‖ uint32 CRC-32C of payload ‖ payload
//
// There is no segment header: the file name carries everything the
// recovery pass needs. seg-<first>.wal holds the entries starting at
// tree index <first> (20-digit zero-padded decimal, so lexical order is
// index order). Records never straddle segments, and every byte of a
// segment belongs to some record — any flipped bit lands in a length, a
// checksum or a payload, and each of those is detected on replay.
//
// A sharded store (StoreConfig.Shards > 1) keeps one segment stream per
// host slot instead: seg-h<shard>-<first>.wal, where <first> is the
// stream-local record ordinal (streams rotate independently) and every
// record payload is prefixed with the entry's 8-byte big-endian global
// tree index, so recovery can interleave the per-host streams back into
// the exact global order the sequencer committed. The frame itself is
// unchanged — the CRC covers index prefix and entry alike.

const (
	segmentSuffix = ".wal"
	segmentPrefix = "seg-"
	// recordHeaderLen is the length + checksum prefix.
	recordHeaderLen = 8
	// maxRecordBytes bounds a single entry's canonical encoding: recovery
	// rejects larger claimed lengths instead of allocating for them.
	maxRecordBytes = 1 << 20
	// defaultSegmentMaxBytes caps a segment before rotation.
	defaultSegmentMaxBytes = 1 << 20
)

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTornTail marks an incomplete final record: a crash mid-write, not
// corruption. The recovery pass truncates it; every other framing fault
// is ErrStateCorrupt.
var errTornTail = errors.New("translog: torn record at segment tail")

// segmentName renders the file name for the segment whose first entry
// has the given tree index.
func segmentName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segmentPrefix, first, segmentSuffix)
}

// parseSegmentName extracts the first-entry index from a segment file
// name, reporting ok=false for unrelated files.
func parseSegmentName(name string) (first uint64, ok bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if len(digits) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// shardSegmentPrefix marks a per-host segment stream; the 4-digit shard
// slot keeps lexical order = (shard, ordinal) order.
const shardSegmentPrefix = segmentPrefix + "h"

// maxShardSlots bounds StoreConfig.Shards: the file-name encoding holds
// exactly 4 shard digits, and a slot it cannot name would write
// segments recovery silently ignores — a log that bricks itself.
// OpenDurableLog refuses larger configs up front.
const maxShardSlots = 9999

// shardSegmentName renders the file name for the sharded segment of the
// given host slot whose first record is the stream-local ordinal first.
func shardSegmentName(shard int, first uint64) string {
	return fmt.Sprintf("%s%04d-%020d%s", shardSegmentPrefix, shard, first, segmentSuffix)
}

// parseShardSegmentName extracts the host slot and stream-local first
// ordinal from a sharded segment name, ok=false for unrelated files
// (including single-stream seg-<first>.wal names).
func parseShardSegmentName(name string) (shard int, first uint64, ok bool) {
	if !strings.HasPrefix(name, shardSegmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, shardSegmentPrefix), segmentSuffix)
	shardDigits, firstDigits, found := strings.Cut(body, "-")
	if !found || len(shardDigits) != 4 || len(firstDigits) != 20 {
		return 0, 0, false
	}
	s, err := strconv.ParseUint(shardDigits, 10, 32)
	if err != nil {
		return 0, 0, false
	}
	n, err := strconv.ParseUint(firstDigits, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return int(s), n, true
}

// listSegments returns the single-stream segment first-indices present
// in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	firsts, _, err := listAllSegments(dir)
	return firsts, err
}

// listAllSegments scans dir once and returns both layouts: the sorted
// single-stream firsts and, per shard slot, the sorted stream-local
// firsts of that shard's segments. Recovery refuses a directory holding
// both layouts, so exactly one of the returns is normally non-empty.
func listAllSegments(dir string) (firsts []uint64, shardFirsts map[int][]uint64, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("translog: reading store dir: %w", err)
	}
	shardFirsts = make(map[int][]uint64)
	for _, de := range names {
		if shard, first, ok := parseShardSegmentName(de.Name()); ok {
			shardFirsts[shard] = append(shardFirsts[shard], first)
			continue
		}
		if first, ok := parseSegmentName(de.Name()); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for _, fs := range shardFirsts {
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	}
	return firsts, shardFirsts, nil
}

// shardIndexLen is the global-index prefix every sharded record payload
// carries.
const shardIndexLen = 8

// maxShardedEntryBytes bounds a single entry's canonical encoding in a
// sharded store: the index prefix rides inside the same record frame, so
// the entry itself gets 8 bytes less than the single-stream limit.
const maxShardedEntryBytes = maxRecordBytes - shardIndexLen

// indexedPayload builds a sharded record payload: the entry's global
// tree index followed by its canonical encoding. It travels under the
// ordinary record CRC, so the index is covered by the same checksum.
func indexedPayload(index uint64, payload []byte) []byte {
	rec := make([]byte, shardIndexLen, shardIndexLen+len(payload))
	binary.BigEndian.PutUint64(rec, index)
	return append(rec, payload...)
}

// appendIndexedRecord frames one sharded record into dst without
// materialising the combined payload — the CRC runs over the index
// prefix and the entry as two updates of the same checksum.
func appendIndexedRecord(dst []byte, index uint64, payload []byte) []byte {
	var idx [shardIndexLen]byte
	binary.BigEndian.PutUint64(idx[:], index)
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(shardIndexLen+len(payload)))
	sum := crc32.Update(crc32.Update(0, crcTable, idx[:]), crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:], sum)
	dst = append(dst, hdr[:]...)
	dst = append(dst, idx[:]...)
	return append(dst, payload...)
}

// splitIndexedRecord undoes appendIndexedRecord's payload layout.
func splitIndexedRecord(rec []byte) (index uint64, payload []byte, err error) {
	if len(rec) < shardIndexLen {
		return 0, nil, fmt.Errorf("%w: sharded record too short for its index prefix", ErrStateCorrupt)
	}
	return binary.BigEndian.Uint64(rec[:shardIndexLen]), rec[shardIndexLen:], nil
}

// appendRecord frames one payload into dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// scanSegment decodes every record in data. clean is the byte offset of
// the end of the last intact record. A trailing partial record (fewer
// bytes than its header claims, or a header cut short) yields errTornTail
// with the intact prefix decoded; an impossible length or a checksum
// mismatch on a complete record yields ErrStateCorrupt — that is damage,
// not an interrupted write, and must never be silently dropped.
func scanSegment(data []byte) (payloads [][]byte, clean int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < recordHeaderLen {
			return payloads, off, errTornTail
		}
		n := binary.BigEndian.Uint32(data[off : off+4])
		if n > maxRecordBytes {
			return payloads, off, fmt.Errorf("%w: record length %d exceeds %d", ErrStateCorrupt, n, maxRecordBytes)
		}
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		body := data[off+recordHeaderLen:]
		if uint64(len(body)) < uint64(n) {
			return payloads, off, errTornTail
		}
		payload := body[:n]
		if crc32.Checksum(payload, crcTable) != sum {
			return payloads, off, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrStateCorrupt, off)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += recordHeaderLen + int(n)
	}
	return payloads, off, nil
}

// readSegment loads and scans one segment file.
func readSegment(path string) (payloads [][]byte, clean int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("translog: reading segment %s: %w", filepath.Base(path), err)
	}
	return scanSegment(data)
}
