package translog

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestTileMath pins the coordinate arithmetic the whole tile scheme
// rides on.
func TestTileMath(t *testing.T) {
	cases := []struct {
		n, level, nodes, full uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 1, 0},
		{255, 0, 255, 0},
		{256, 0, 256, 1},
		{257, 0, 257, 1},
		{512, 0, 512, 2},
		{65536, 0, 65536, 256},
		{65536, 1, 256, 1},
		{65537, 1, 256, 1},
		{1 << 16, 2, 1, 0},
		{1 << 24, 2, 256, 1},
		{1200, 0, 1200, 4},
		{1200, 1, 4, 0},
	}
	for _, c := range cases {
		if got := tileNodeCount(c.n, c.level); got != c.nodes {
			t.Errorf("tileNodeCount(%d, %d) = %d, want %d", c.n, c.level, got, c.nodes)
		}
		if got := fullTileCount(c.n, c.level); got != c.full {
			t.Errorf("fullTileCount(%d, %d) = %d, want %d", c.n, c.level, got, c.full)
		}
	}
}

// TestTileEncodeDecodeRoundTrip covers the checksummed framing: exact
// round trips, deterministic bytes, and rejection of every damage mode.
func TestTileEncodeDecodeRoundTrip(t *testing.T) {
	for _, width := range []int{1, 2, 137, TileWidth} {
		tile := &Tile{Level: 3, Index: 12345}
		for i := 0; i < width; i++ {
			tile.Hashes = append(tile.Hashes, LeafHash([]byte{byte(i), byte(width)}))
		}
		enc := encodeTile(tile)
		if string(enc) != string(encodeTile(tile)) {
			t.Fatal("encodeTile is not deterministic")
		}
		got, err := decodeTile(enc)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if !reflect.DeepEqual(got, tile) {
			t.Fatalf("width %d: round trip mismatch", width)
		}
		// Any flipped byte must fail the checksum (or the magic check).
		for _, pos := range []int{0, 9, len(enc) / 2, len(enc) - 1} {
			bad := append([]byte(nil), enc...)
			bad[pos] ^= 0x40
			if _, err := decodeTile(bad); err == nil {
				t.Fatalf("width %d: flipped byte %d accepted", width, pos)
			}
		}
		// Every strict prefix must be rejected, never panic.
		for n := 0; n < len(enc); n += 7 {
			if _, err := decodeTile(enc[:n]); err == nil {
				t.Fatalf("width %d: truncation to %d accepted", width, n)
			}
		}
	}
	if _, err := decodeTile(nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

// TestLogTileContents checks Log.Tile against the tree's raw node
// hashes at every level the tree supports, full and partial tiles both,
// and the range errors for everything past the committed head.
func TestLogTileContents(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200 // 4 full level-0 tiles + a 176-wide partial edge
	entries := mixedEntries(n)
	if _, err := l.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	for level := uint64(0); tileNodeCount(n, level) > 0; level++ {
		nodes := tileNodeCount(n, level)
		for index := uint64(0); index*TileWidth < nodes; index++ {
			width := TileWidth
			if rem := nodes - index*TileWidth; rem < TileWidth {
				width = int(rem)
			}
			tile, err := l.Tile(level, index, width)
			if err != nil {
				t.Fatalf("Tile(%d, %d, %d): %v", level, index, width, err)
			}
			if tile.Level != level || tile.Index != index || tile.Width() != width {
				t.Fatalf("Tile(%d, %d, %d) returned (%d, %d) width %d",
					level, index, width, tile.Level, tile.Index, tile.Width())
			}
			lo := index * TileWidth
			want, err := l.tree.nodes(int(level)*TileHeight, lo, lo+uint64(width))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tile.Hashes, want) {
				t.Fatalf("Tile(%d, %d, %d) disagrees with tree nodes", level, index, width)
			}
			// One hash past the committed edge must be refused.
			if _, err := l.Tile(level, index, width+1); width+1 <= TileWidth && !errors.Is(err, ErrTileRange) {
				t.Fatalf("Tile(%d, %d, %d) past edge: %v", level, index, width+1, err)
			}
		}
		// The first tile wholly past the edge must be refused.
		if _, err := l.Tile(level, nodes/TileWidth+1, 1); !errors.Is(err, ErrTileRange) {
			t.Fatalf("tile past level-%d edge: %v", level, err)
		}
	}
	for _, bad := range []struct {
		level, index uint64
		width        int
	}{
		{maxTileLevel + 1, 0, 1}, {0, 0, 0}, {0, 0, -4}, {0, 0, TileWidth + 1},
	} {
		if _, err := l.Tile(bad.level, bad.index, bad.width); !errors.Is(err, ErrTileRange) {
			t.Fatalf("Tile(%d, %d, %d): %v, want ErrTileRange", bad.level, bad.index, bad.width, err)
		}
	}
}

// TestTileAssemblerMatchesDirectProofs proves the client-side recursions
// reproduce the server's proofs exactly: every inclusion proof at every
// historical size, every consistency pair, and every root, assembled
// from tiles, must be byte-identical to what the tree computes directly.
func TestTileAssemblerMatchesDirectProofs(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300 // spans a full tile plus a ragged partial edge
	if _, err := l.AppendBatch(mixedEntries(n)); err != nil {
		t.Fatal(err)
	}
	asm := NewTileAssembler(l, 8)
	for size := uint64(1); size <= n; size += 7 {
		root, err := asm.RootAt(size)
		if err != nil {
			t.Fatalf("RootAt(%d): %v", size, err)
		}
		direct, err := l.RootAt(size)
		if err != nil {
			t.Fatal(err)
		}
		if root != direct {
			t.Fatalf("RootAt(%d) disagrees with the tree", size)
		}
		for index := uint64(0); index < size; index += 11 {
			proof, err := asm.InclusionProof(index, size)
			if err != nil {
				t.Fatalf("InclusionProof(%d, %d): %v", index, size, err)
			}
			want, err := l.InclusionProof(index, size)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(proof, want) {
				t.Fatalf("InclusionProof(%d, %d) disagrees with the tree", index, size)
			}
		}
		for first := uint64(0); first <= size; first += 13 {
			proof, err := asm.ConsistencyProof(first, size)
			if err != nil {
				t.Fatalf("ConsistencyProof(%d, %d): %v", first, size, err)
			}
			want, err := l.ConsistencyProof(first, size)
			if err != nil {
				t.Fatal(err)
			}
			if len(proof) != len(want) || (len(proof) > 0 && !reflect.DeepEqual(proof, want)) {
				t.Fatalf("ConsistencyProof(%d, %d) disagrees with the tree", first, size)
			}
		}
	}
	if _, err := asm.InclusionProof(5, 4); !errors.Is(err, ErrTileRange) {
		t.Fatalf("index past size: %v", err)
	}
	if _, err := asm.ConsistencyProof(7, 3); !errors.Is(err, ErrTileRange) {
		t.Fatalf("shrinking consistency: %v", err)
	}
	hits, misses := asm.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("assembler LRU never exercised: hits=%d misses=%d", hits, misses)
	}
}

// TestColdRangeTileServing is the exhaustive cold-range matrix: a
// checkpointed-then-compacted log reopens with its prefix frozen out of
// memory, and every tile — wholly below the frozen boundary (hydrated
// from the .arc archives), straddling it, and on the live edge — must
// serve bytes identical to an always-resident reference log, and the
// proofs assembled from those tiles must verify against the signed head.
func TestColdRangeTileServing(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	const total, ckptAt = 1200, 800
	entries := mixedEntries(total)

	l, err := OpenDurableLog(key, dir, checkpointedConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, entries[:ckptAt])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, entries[ckptAt:])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurableLog(key, dir, checkpointedConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	// Every tile at every level, cold through live: byte-identical to the
	// reference (which also pins hydration to the checkpoint's content).
	for level := uint64(0); tileNodeCount(total, level) > 0; level++ {
		nodes := tileNodeCount(total, level)
		for index := uint64(0); index*TileWidth < nodes; index++ {
			width := TileWidth
			if rem := nodes - index*TileWidth; rem < TileWidth {
				width = int(rem)
			}
			got, err := re.Tile(level, index, width)
			if err != nil {
				t.Fatalf("cold Tile(%d, %d, %d): %v", level, index, width, err)
			}
			want, err := ref.Tile(level, index, width)
			if err != nil {
				t.Fatal(err)
			}
			if string(encodeTile(got)) != string(encodeTile(want)) {
				t.Fatalf("Tile(%d, %d, %d) bytes diverge from reference", level, index, width)
			}
		}
	}

	// Proofs assembled from the reopened log's tiles verify against the
	// signed head, across the frozen boundary in both directions.
	asm := NewTileAssembler(re, 0)
	sth := re.STH()
	root, err := asm.RootAt(sth.Size)
	if err != nil {
		t.Fatal(err)
	}
	if root != sth.RootHash {
		t.Fatal("tile-assembled root disagrees with the signed head")
	}
	for _, index := range []uint64{0, 255, 256, ckptAt - 1, ckptAt, total - 1} {
		proof, err := asm.InclusionProof(index, sth.Size)
		if err != nil {
			t.Fatalf("InclusionProof(%d): %v", index, err)
		}
		if err := VerifyInclusion(LeafHash(entries[index].Marshal()), index, sth.Size, proof, sth.RootHash); err != nil {
			t.Fatalf("assembled proof for %d: %v", index, err)
		}
	}
	for _, first := range []uint64{1, 255, 256, ckptAt, total} {
		proof, err := asm.ConsistencyProof(first, total)
		if err != nil {
			t.Fatalf("ConsistencyProof(%d, %d): %v", first, total, err)
		}
		firstRoot, err := ref.RootAt(first)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyConsistency(first, total, firstRoot, sth.RootHash, proof); err != nil {
			t.Fatalf("assembled consistency %d → %d: %v", first, total, err)
		}
	}
}

// TestTilePublisherBackgroundAndResume covers the off-commit-path
// publisher: commits that complete a tile trigger it, the watermark
// persists, a reopened log resumes instead of republishing, and the
// published files byte-match what Tile serves.
func TestTilePublisherBackgroundAndResume(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	cfg := StoreConfig{NoSync: true}
	l, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := mixedEntries(600)
	appendAll(t, l, entries)
	if err := l.Close(); err != nil { // Close drains the background publisher
		t.Fatal(err)
	}
	if mark := (&Store{dir: dir}).loadTileMark(); mark != 600 {
		t.Fatalf("published watermark %d, want 600", mark)
	}
	for index := uint64(0); index < 2; index++ {
		if _, err := os.Stat((&Store{dir: dir}).tilePath(0, index)); err != nil {
			t.Fatalf("published tile (0, %d) missing: %v", index, err)
		}
	}

	re, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.tileMark.Load(); got != 600 {
		t.Fatalf("reopened watermark %d, want 600", got)
	}
	published := mTilesPublished.Value()
	tile, err := re.Tile(0, 0, TileWidth)
	if err != nil {
		t.Fatal(err)
	}
	if mTilesPublished.Value() != published {
		t.Fatal("cache hit still republished the tile")
	}
	data, err := os.ReadFile(re.store.tilePath(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(encodeTile(tile)) {
		t.Fatal("served tile bytes differ from the published file")
	}
}

// TestTileServingTakesNoCommitLockAndHashesNothing pins the tentpole
// no-contention claim two ways at once: a below-watermark full tile is
// served through the HTTP handler while the test holds the log's commit
// lock (so any acquisition — including the hydration path's — would
// deadlock and time the request out), and the cache file has been
// overwritten with distinctive valid-CRC bytes beforehand, so getting
// those bytes back verbatim proves the response came from one file read
// — no tree access, no hashing.
func TestTileServingTakesNoCommitLockAndHashesNothing(t *testing.T) {
	key := testSigner(t)
	l, err := OpenDurableLog(key, t.TempDir(), StoreConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, mixedEntries(600))
	if err := l.PublishTiles(); err != nil {
		t.Fatal(err)
	}

	// Plant a marker tile: same coordinates, distinctive hashes. The
	// framing is valid, so only the file-read path can produce it.
	marker := &Tile{Level: 0, Index: 0, Hashes: make([]Hash, TileWidth)}
	for i := range marker.Hashes {
		for j := range marker.Hashes[i] {
			marker.Hashes[i][j] = 0xA5
		}
	}
	if err := os.WriteFile(l.store.tilePath(0, 0), encodeTile(marker), 0o600); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(l))
	defer srv.Close()
	client := NewClient(srv.URL, &key.PublicKey)

	l.mu.Lock()
	got := make(chan *Tile, 1)
	fail := make(chan error, 1)
	go func() {
		tile, err := client.Tile(0, 0, TileWidth)
		if err != nil {
			fail <- err
			return
		}
		got <- tile
	}()
	select {
	case tile := <-got:
		if string(encodeTile(tile)) != string(encodeTile(marker)) {
			l.mu.Unlock()
			t.Fatal("tile not served verbatim from the cache file")
		}
	case err := <-fail:
		l.mu.Unlock()
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		l.mu.Unlock()
		t.Fatal("tile request blocked while the commit lock was held")
	}
	l.mu.Unlock()
}

// TestTileHTTPCacheHeaders pins the cacheability matrix: what a front
// cache may keep forever, briefly, or never.
func TestTileHTTPCacheHeaders(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mixedEntries(600)); err != nil { // 2 full tiles + 88-wide edge
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, resp.Header.Get("Cache-Control")
	}
	cases := []struct {
		path   string
		status int
		cache  string
	}{
		{"/translog/v1/tile/0/0", 200, cacheImmutable},
		{"/translog/v1/tile/0/1", 200, cacheImmutable},
		{"/translog/v1/tile/1/0.p/2", 200, cachePartialTile},
		{"/translog/v1/tile/0/2.p/88", 200, cachePartialTile},
		{"/translog/v1/tile/0/2", 404, ""},       // right edge not full yet
		{"/translog/v1/tile/0/2.p/89", 404, ""},  // one past the edge
		{"/translog/v1/tile/8/0", 404, ""},       // level beyond maxTileLevel
		{"/translog/v1/tile/0/0.p/256", 404, ""}, // full width via partial form
		{"/translog/v1/tile/0/0.p/0", 404, ""},   // zero width
		{"/translog/v1/tile/0/junk", 404, ""},    // malformed index
		{"/translog/v1/tile/0", 404, ""},         // missing index
		{"/translog/v1/tile/0/0/1/2", 404, ""},   // junk suffix
		{"/translog/v1/sth", 200, cacheNoCache},
		{"/translog/v1/entries?start=0&count=10", 200, cacheImmutable},
		{"/translog/v1/entries?start=590&count=20", 200, cacheNoCache}, // clamped at the head
		{"/translog/v1/entries?start=0&count=0", 200, cacheNoCache},
		{"/translog/v1/inclusion?index=3&size=600", 200, cacheImmutable},
		{"/translog/v1/consistency?first=10&second=600", 200, cacheImmutable},
	}
	for _, c := range cases {
		resp, cache := get(c.path)
		if resp.StatusCode != c.status {
			t.Errorf("GET %s: status %d, want %d", c.path, resp.StatusCode, c.status)
			continue
		}
		if c.status == 200 && cache != c.cache {
			t.Errorf("GET %s: Cache-Control %q, want %q", c.path, cache, c.cache)
		}
	}
}

// TestClientTileProofSourceEndToEnd drives the full remote path: lookup
// without a server-computed proof, tile fetches over HTTP, local
// assembly, and the credential checker verdict on the finished bundle.
func TestClientTileProofSourceEndToEnd(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	entries := mixedEntries(700)
	if _, err := l.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()
	client := NewClient(srv.URL, &key.PublicKey)

	source := NewTileProofSource(client, 16)
	serial := issuedSerial(t, entries)
	pb, err := source.ProveSerial(serial)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Verify(&key.PublicKey); err != nil {
		t.Fatalf("assembled bundle fails verification: %v", err)
	}
	direct, err := l.ProveSerial(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pb.Proof, direct.Proof) {
		t.Fatal("assembled proof differs from the server-computed one")
	}

	// The second proof for the same serial reuses cached tiles: zero new
	// misses.
	_, misses := source.Stats()
	if _, err := source.ProveSerial(serial); err != nil {
		t.Fatal(err)
	}
	if _, after := source.Stats(); after != misses {
		t.Fatalf("repeat proof missed the tile cache: %d → %d", misses, after)
	}

	// Revoked and never-logged keep their distinct verdicts through the
	// ?proof=0 path.
	var revokedSerial string
	for _, e := range entries {
		if e.Type == EntryRevoke {
			revokedSerial = e.Serial
			break
		}
	}
	if _, err := source.ProveSerial(revokedSerial); !errors.Is(err, ErrLogRevoked) {
		t.Fatalf("revoked serial: %v", err)
	}
	if _, err := source.ProveSerial("no-such-serial"); !errors.Is(err, ErrNotLogged) {
		t.Fatalf("unknown serial: %v", err)
	}
}

// TestClientsShareTransportConnections pins the pooled-transport
// satellite: many clients against one server reuse one idle connection
// instead of opening one per client.
func TestClientsShareTransportConnections(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mixedEntries(10)); err != nil {
		t.Fatal(err)
	}
	var conns atomic.Int32
	srv := httptest.NewUnstartedServer(Handler(l))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	for i := 0; i < 4; i++ {
		c := NewClient(srv.URL, &key.PublicKey)
		for j := 0; j < 3; j++ {
			if _, err := c.STH(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := conns.Load(); got > 2 {
		t.Fatalf("12 sequential requests from 4 clients opened %d connections, want the shared pool to reuse 1", got)
	}
}

// TestGossipTileProofs checks a witness advancing on tile-assembled
// consistency proofs: same verdicts, no consistency-endpoint dependency.
func TestGossipTileProofs(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	entries := mixedEntries(900)
	if _, err := l.AppendBatch(entries[:400]); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()

	pool := NewGossipPool("w0", NewWitness(&key.PublicKey), NewClient(srv.URL, &key.PublicKey))
	pool.UseTileProofs(8)
	if err := pool.Exchange(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(entries[400:]); err != nil {
		t.Fatal(err)
	}
	if err := pool.Exchange(); err != nil {
		t.Fatal(err)
	}
	last, seen := pool.Witness().Last()
	if !seen || last.Size != 900 {
		t.Fatalf("witness head %d (seen=%v), want 900", last.Size, seen)
	}
	hits, misses := pool.tiles.Stats()
	if hits+misses == 0 {
		t.Fatal("tile assembler never consulted for the advance")
	}
}
