// Package translog implements a Certificate-Transparency-style audit log
// for the Verification Manager: an append-only Merkle tree over canonical-
// encoded log entries recording every enrollment, attestation verdict,
// credential provisioning and revocation. Tree heads are signed with the
// VM's CA key, so any party holding the CA certificate can audit what the
// trust anchor did — verify that a credential was actually issued by the
// attestation workflow (inclusion proofs), and that the log never rewrote
// history (consistency proofs) — without trusting the VM's word.
//
// The hashing structure follows RFC 6962: leaves are hashed with a 0x00
// domain-separation prefix and interior nodes with 0x01, and inclusion
// and consistency proofs use the Merkle audit paths of §2.1.
package translog

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EntryType enumerates auditable Verification Manager actions.
type EntryType uint8

// Entry types. Every externally visible trust decision of the VM maps to
// exactly one of these.
const (
	// EntryEnroll records a successful VNF enrollment (steps 3–5).
	EntryEnroll EntryType = 1
	// EntryAttestOK records a passed attestation appraisal (host or VNF).
	EntryAttestOK EntryType = 2
	// EntryAttestFail records a failed attestation appraisal.
	EntryAttestFail EntryType = 3
	// EntryProvision records credential material issued to an enclave,
	// keyed by the certificate serial the controller will later see.
	EntryProvision EntryType = 4
	// EntryRevoke records a credential revocation.
	EntryRevoke EntryType = 5
)

// String names the entry type for reports.
func (t EntryType) String() string {
	switch t {
	case EntryEnroll:
		return "enroll"
	case EntryAttestOK:
		return "attest-ok"
	case EntryAttestFail:
		return "attest-fail"
	case EntryProvision:
		return "provision"
	case EntryRevoke:
		return "revoke"
	default:
		return fmt.Sprintf("entry(%d)", uint8(t))
	}
}

// Errors.
var (
	ErrMalformedEntry = errors.New("translog: malformed entry encoding") //lint:allow unusedexport wire-decode error contract: surfaced wrapped through exported read paths, matched by callers with errors.Is
	ErrUnknownType    = errors.New("translog: unknown entry type")       //lint:allow unusedexport wire-decode error contract: surfaced wrapped through exported read paths, matched by callers with errors.Is
)

// Entry is one auditable event. Fields not meaningful for a given type are
// left empty ("" / nil); the canonical encoding covers every field so two
// distinct events can never collide under the leaf hash.
type Entry struct {
	// Type is the event kind.
	Type EntryType `json:"type"`
	// Timestamp is the VM's event time in Unix milliseconds.
	Timestamp int64 `json:"timestamp"`
	// Actor is the subject of the event: a VNF name for enrollment,
	// provisioning and revocation, a host name for host attestations.
	Actor string `json:"actor"`
	// Host is the container host involved (may equal Actor).
	Host string `json:"host,omitempty"`
	// Serial is the credential certificate serial (decimal), set for
	// enroll, provision and revoke entries — the join key the controller
	// uses to demand proof that a presented certificate was logged.
	Serial string `json:"serial,omitempty"`
	// Measurement is the attested enclave measurement, when applicable.
	Measurement []byte `json:"measurement,omitempty"`
	// Detail carries the appraisal verdict or failure findings.
	Detail string `json:"detail,omitempty"`
}

// entryVersion tags the canonical encoding so it can evolve.
const entryVersion = 1

// Marshal produces the canonical, deterministic encoding that is hashed
// into the tree (and carried on the wire by the log server). Layout:
// version ‖ type ‖ timestamp(8) ‖ len-prefixed actor, host, serial,
// measurement, detail.
func (e Entry) Marshal() []byte {
	return e.appendTo(make([]byte, 0, e.marshalledSize()))
}

// marshalledSize returns the exact canonical encoding length.
func (e Entry) marshalledSize() int {
	return 2 + 8 + 5*4 + len(e.Actor) + len(e.Host) + len(e.Serial) + len(e.Measurement) + len(e.Detail)
}

// appendTo appends the canonical encoding to out — the allocation-free
// form batch committers use to marshal a whole cycle into one arena.
func (e Entry) appendTo(out []byte) []byte {
	out = append(out, entryVersion, byte(e.Type))
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(e.Timestamp))
	out = append(out, u64[:]...)
	out = appendBytes(out, []byte(e.Actor))
	out = appendBytes(out, []byte(e.Host))
	out = appendBytes(out, []byte(e.Serial))
	out = appendBytes(out, e.Measurement)
	out = appendBytes(out, []byte(e.Detail))
	return out
}

// unmarshalEntry parses a canonical encoding, rejecting truncated input,
// trailing bytes and unknown types.
func unmarshalEntry(b []byte) (Entry, error) {
	var e Entry
	if len(b) < 10 {
		return e, ErrMalformedEntry
	}
	if b[0] != entryVersion {
		return e, fmt.Errorf("%w: version %d", ErrMalformedEntry, b[0])
	}
	e.Type = EntryType(b[1])
	if e.Type < EntryEnroll || e.Type > EntryRevoke {
		return e, fmt.Errorf("%w: %d", ErrUnknownType, b[1])
	}
	e.Timestamp = int64(binary.BigEndian.Uint64(b[2:10]))
	b = b[10:]
	var err error
	var actor, host, serial, detail []byte
	if actor, b, err = readBytes(b); err != nil {
		return e, err
	}
	if host, b, err = readBytes(b); err != nil {
		return e, err
	}
	if serial, b, err = readBytes(b); err != nil {
		return e, err
	}
	if e.Measurement, b, err = readBytes(b); err != nil {
		return e, err
	}
	if detail, b, err = readBytes(b); err != nil {
		return e, err
	}
	if len(b) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes", ErrMalformedEntry, len(b))
	}
	if len(e.Measurement) == 0 {
		e.Measurement = nil
	}
	e.Actor, e.Host, e.Serial, e.Detail = string(actor), string(host), string(serial), string(detail)
	return e, nil
}

func appendBytes(dst, b []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

func readBytes(b []byte) (val, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, ErrMalformedEntry
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint64(len(b)) < uint64(n) {
		return nil, nil, ErrMalformedEntry
	}
	return append([]byte(nil), b[:n]...), b[n:], nil
}
