package translog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Cold-segment compaction: WAL segments whose every record sits below
// the newest checkpoint carry data recovery no longer replays, but that
// proofs and entry reads over the cold range still need. The compactor
// rewrites them into read-optimised archive files — the canonical entry
// encodings for a contiguous global index range, length-prefixed, one
// whole-file CRC — and then deletes the WAL segments they replace.
// Hydration (log.go) loads archives back without re-marshalling a
// single entry and verifies the rebuilt prefix against the checkpoint
// root, so an archive is trusted exactly as far as a WAL segment was.
//
// Crash safety is rename discipline: each archive is written
// tmp + fsync + rename + dir-sync before any WAL segment is unlinked,
// so every crash window leaves either both representations (harmless
// overlap — cold reads prefer archives and skip the duplicate WAL
// records) or the archive alone, never neither. A stream's newest
// segment is never archived, even when fully cold: the store holds it
// open for append, and unlinking an open append tail would divorce the
// durable file from the live one.

const (
	archiveSuffix = ".arc"
	archivePrefix = "arc-"
	// archiveTargetBytes caps one archive file's payload size.
	archiveTargetBytes = 4 << 20
)

// arcMagic identifies an archive file (and its format version).
var arcMagic = [8]byte{'V', 'N', 'F', 'G', 'A', 'R', 'C', '1'}

// archiveName renders the file name for the archive holding count
// entries starting at global index first. Both ride in the name so a
// directory listing alone yields the archived watermark.
func archiveName(first uint64, count int) string {
	return fmt.Sprintf("%s%020d-%010d%s", archivePrefix, first, count, archiveSuffix)
}

// parseArchiveName extracts the first index and entry count, ok=false
// for unrelated files.
func parseArchiveName(name string) (first uint64, count int, ok bool) {
	if !strings.HasPrefix(name, archivePrefix) || !strings.HasSuffix(name, archiveSuffix) {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, archivePrefix), archiveSuffix)
	firstDigits, countDigits, found := strings.Cut(body, "-")
	if !found || len(firstDigits) != 20 || len(countDigits) != 10 {
		return 0, 0, false
	}
	f, err := strconv.ParseUint(firstDigits, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	c, err := strconv.ParseUint(countDigits, 10, 32)
	if err != nil {
		return 0, 0, false
	}
	return f, int(c), true
}

// listArchives returns the archives in dir sorted by first index.
func listArchives(dir string) (firsts []uint64, counts []int, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("translog: reading store dir: %w", err)
	}
	type arc struct {
		first uint64
		count int
	}
	var arcs []arc
	for _, de := range names {
		if f, c, ok := parseArchiveName(de.Name()); ok {
			arcs = append(arcs, arc{f, c})
		}
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].first < arcs[j].first })
	for _, a := range arcs {
		firsts = append(firsts, a.first)
		counts = append(counts, a.count)
	}
	return firsts, counts, nil
}

// encodeArchive builds one archive file's bytes: magic, first, count,
// length-prefixed payloads, whole-file CRC-32C.
func encodeArchive(first uint64, payloads [][]byte) []byte {
	size := len(arcMagic) + 12 + 4
	for _, p := range payloads {
		size += 4 + len(p)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, arcMagic[:]...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], first)
	buf = append(buf, u64[:]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(payloads)))
	buf = append(buf, u32[:]...)
	for _, p := range payloads {
		binary.BigEndian.PutUint32(u32[:], uint32(len(p)))
		buf = append(buf, u32[:]...)
		buf = append(buf, p...)
	}
	binary.BigEndian.PutUint32(u32[:], crc32.Checksum(buf, crcTable))
	return append(buf, u32[:]...)
}

// readArchive loads one archive, verifying its CRC and that its header
// matches its name.
func readArchive(dir string, first uint64, count int) ([][]byte, error) {
	name := archiveName(first, count)
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("translog: reading archive %s: %w", name, err)
	}
	if len(data) < len(arcMagic)+16 || !bytes.Equal(data[:len(arcMagic)], arcMagic[:]) {
		return nil, fmt.Errorf("%w: archive %s malformed", ErrStateCorrupt, name)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: archive %s checksum mismatch", ErrStateCorrupt, name)
	}
	rest := body[len(arcMagic):]
	gotFirst := binary.BigEndian.Uint64(rest[:8])
	gotCount := binary.BigEndian.Uint32(rest[8:12])
	if gotFirst != first || int(gotCount) != count {
		return nil, fmt.Errorf("%w: archive %s header disagrees with its name", ErrStateCorrupt, name)
	}
	rest = rest[12:]
	payloads := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: archive %s truncated", ErrStateCorrupt, name)
		}
		n := binary.BigEndian.Uint32(rest[:4])
		if uint64(len(rest)-4) < uint64(n) {
			return nil, fmt.Errorf("%w: archive %s truncated", ErrStateCorrupt, name)
		}
		payloads = append(payloads, rest[4:4+n])
		rest = rest[4+n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: archive %s holds trailing bytes", ErrStateCorrupt, name)
	}
	return payloads, nil
}

// coldRecord is one cold WAL record located for compaction.
type coldRecord struct {
	index   uint64
	payload []byte
}

// coldWALRecords scans the store's WAL segments for records with global
// index in [lo, hi), never touching each stream's newest segment when
// tailSafe is set (the store may hold it open for append). The returned
// records are globally sorted. Segments every record of which falls
// below hi are reported in removable (candidates for deletion once
// their records are archived), keyed by path with their max index.
func coldWALRecords(dir string, lo, hi uint64, tailSafe bool) (records []coldRecord, removable map[string]uint64, err error) {
	firsts, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	removable = map[string]uint64{}
	scan := func(path string, base uint64, sharded bool, isTail bool) error {
		payloads, _, err := readSegment(path)
		if err != nil && !errors.Is(err, errTornTail) {
			return err
		}
		max := uint64(0)
		all := true
		for j, p := range payloads {
			idx := base + uint64(j)
			body := p
			if sharded {
				var serr error
				idx, body, serr = splitIndexedRecord(p)
				if serr != nil {
					return serr
				}
			}
			if idx > max {
				max = idx
			}
			if idx >= hi {
				all = false
			}
			if idx >= lo && idx < hi {
				records = append(records, coldRecord{index: idx, payload: body})
			}
		}
		if all && len(payloads) > 0 && !(tailSafe && isTail) {
			removable[path] = max
		}
		return nil
	}
	for i, first := range firsts {
		if first >= hi {
			break
		}
		path := filepath.Join(dir, segmentName(first))
		if err := scan(path, first, false, i == len(firsts)-1); err != nil {
			return nil, nil, err
		}
	}
	for shard, sf := range shardFirsts {
		for i, first := range sf {
			path := filepath.Join(dir, shardSegmentName(shard, first))
			if err := scan(path, first, true, i == len(sf)-1); err != nil {
				return nil, nil, err
			}
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].index < records[j].index })
	return records, removable, nil
}

// compact archives every WAL segment that sits entirely below the
// checkpoint boundary c and deletes it, leaving straddling segments
// (and each stream's open tail) in place. Safe to run concurrently with
// appends — it only reads and removes segments below c, which the
// append path never touches — and serialised against cold reads by
// compactMu. A run that finds nothing cold is a no-op.
func (s *Store) compact(c uint64) error {
	if c == 0 {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	arcFirsts, arcCounts, err := listArchives(s.dir)
	if err != nil {
		return err
	}
	// watermark is the end of the contiguous archived prefix from 0.
	watermark := uint64(0)
	for i := range arcFirsts {
		if arcFirsts[i] != watermark {
			break
		}
		watermark += uint64(arcCounts[i])
	}
	records, removable, err := coldWALRecords(s.dir, watermark, c, true)
	if err != nil {
		return err
	}
	// Archive the contiguous run from the watermark. A gap (a cold
	// record still locked inside a straddling or tail segment) stops
	// the run; everything past it stays in the WAL until a later pass.
	run := len(records)
	for i, r := range records {
		if r.index != watermark+uint64(i) {
			run = i
			break
		}
	}
	archivedEnd := watermark + uint64(run)
	if run > 0 {
		for lo := 0; lo < run; {
			sz := 0
			hi := lo
			for hi < run && (hi == lo || sz < archiveTargetBytes) {
				sz += len(records[hi].payload)
				hi++
			}
			payloads := make([][]byte, 0, hi-lo)
			for _, r := range records[lo:hi] {
				payloads = append(payloads, r.payload)
			}
			first := watermark + uint64(lo)
			buf := encodeArchive(first, payloads)
			if err := atomicWriteFile(filepath.Join(s.dir, archiveName(first, len(payloads))), buf, !s.cfg.NoSync); err != nil {
				return err
			}
			lo = hi
		}
	}
	// Only now, with every cold record durably archived up to
	// archivedEnd, unlink the WAL segments that fall entirely below it.
	removed := false
	for path, max := range removable {
		if max < archivedEnd {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("translog: removing compacted segment: %w", err)
			}
			removed = true
		}
	}
	if removed && !s.cfg.NoSync {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	if run > 0 {
		mCompactRuns.Inc()
	}
	return nil
}

// loadCold reads the canonical encodings of every entry below the
// checkpoint boundary c, archives first, cold WAL records for whatever
// the archives do not yet cover, and returns them with their leaf
// hashes. The hashes are recomputed here — an archive's CRC detects
// damage, but binding payloads to the checkpointed root is the caller's
// verification, exactly as WAL replay binds records to the persisted
// head.
func (s *Store) loadCold(c uint64) ([][]byte, []Hash, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	arcFirsts, arcCounts, err := listArchives(s.dir)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, 0, c)
	for i := range arcFirsts {
		if arcFirsts[i] != uint64(len(payloads)) || uint64(len(payloads)) >= c {
			break
		}
		ps, err := readArchive(s.dir, arcFirsts[i], arcCounts[i])
		if err != nil {
			return nil, nil, err
		}
		payloads = append(payloads, ps...)
	}
	if uint64(len(payloads)) > c {
		return nil, nil, fmt.Errorf("%w: archives cover %d entries beyond the checkpoint at %d",
			ErrStateCorrupt, len(payloads), c)
	}
	if uint64(len(payloads)) < c {
		records, _, err := coldWALRecords(s.dir, uint64(len(payloads)), c, true)
		if err != nil {
			return nil, nil, err
		}
		for i, r := range records {
			if r.index != uint64(len(payloads))+uint64(i) {
				break
			}
			payloads = append(payloads, r.payload)
		}
	}
	if uint64(len(payloads)) != c {
		return nil, nil, fmt.Errorf("%w: only %d of %d cold entries present across archives and segments",
			ErrStateCorrupt, len(payloads), c)
	}
	hashes := make([]Hash, len(payloads))
	for i, p := range payloads {
		hashes[i] = LeafHash(p)
	}
	return payloads, hashes, nil
}
