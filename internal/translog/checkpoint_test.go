package translog

import (
	"bytes"
	"crypto/ecdsa"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// issuedSerial returns a serial that is issued (enroll/provision) and
// never revoked in entries — a serial ProveSerial must succeed for.
func issuedSerial(t *testing.T, entries []Entry) string {
	t.Helper()
	revoked := map[string]bool{}
	for _, e := range entries {
		if e.Type == EntryRevoke {
			revoked[e.Serial] = true
		}
	}
	for _, e := range entries {
		if (e.Type == EntryEnroll || e.Type == EntryProvision) && !revoked[e.Serial] {
			return e.Serial
		}
	}
	t.Fatal("no unrevoked issued serial in test entries")
	return ""
}

// checkpointedConfig keeps segments small (many cold files to compact)
// and skips fsyncs for test speed.
func checkpointedConfig(shards int) StoreConfig {
	return StoreConfig{SegmentMaxBytes: 2048, NoSync: true, Shards: shards}
}

// TestCheckpointedRoundTrip covers the tentpole end to end for both
// layouts: a log checkpointed (and compacted) mid-life reopens from the
// suffix replay with bit-for-bit the same root, head and entry sequence
// a full replay produced, cold reads hydrate from the archives, and the
// log keeps appending and checkpointing across generations.
func TestCheckpointedRoundTrip(t *testing.T) {
	for _, shards := range []int{0, 3} {
		name := "single"
		if shards > 0 {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			key := testSigner(t)
			dir := t.TempDir()
			entries := mixedEntries(1200)

			l, err := OpenDurableLog(key, dir, checkpointedConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, entries[:800])
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, entries[800:])
			rootBefore, err := l.RootAt(l.Size())
			if err != nil {
				t.Fatal(err)
			}
			sthBefore := l.STH()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// The full-replay reference root over the same entries.
			ref, err := NewLog(key)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ref.AppendBatch(entries); err != nil {
				t.Fatal(err)
			}
			refRoot, err := ref.RootAt(uint64(len(entries)))
			if err != nil {
				t.Fatal(err)
			}
			if rootBefore != refRoot {
				t.Fatal("durable root disagrees with in-memory reference")
			}

			suffixBefore := mRecoverSuffixEntries.Value()
			replayedBefore := mRecoverEntries.Value()
			re, err := OpenDurableLog(key, dir, checkpointedConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := re.Size(); got != uint64(len(entries)) {
				t.Fatalf("reopened size %d, want %d", got, len(entries))
			}
			if got := mRecoverSuffixEntries.Value() - suffixBefore; got != 400 {
				t.Fatalf("suffix replay length %d, want 400", got)
			}
			if got := mRecoverEntries.Value() - replayedBefore; got != 400 {
				t.Fatalf("checkpointed open replayed %d entries, want only the 400-entry suffix", got)
			}
			rootAfter, err := re.RootAt(re.Size())
			if err != nil {
				t.Fatal(err)
			}
			if rootAfter != refRoot {
				t.Fatal("checkpointed open root differs from full-replay root")
			}
			sthAfter := re.STH()
			if sthAfter.Size != sthBefore.Size || sthAfter.RootHash != sthBefore.RootHash {
				t.Fatal("tree head changed across checkpointed restart")
			}

			// Proofs against the cold range hydrate and verify.
			serial := issuedSerial(t, entries)
			pb, err := re.ProveSerial(serial)
			if err != nil {
				t.Fatal(err)
			}
			if err := pb.Verify(&key.PublicKey); err != nil {
				t.Fatal(err)
			}
			proof, err := re.InclusionProof(0, sthAfter.Size)
			if err != nil {
				t.Fatal(err)
			}
			e0, err := re.Entry(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyInclusion(LeafHash(e0.Marshal()), 0, sthAfter.Size, proof, sthAfter.RootHash); err != nil {
				t.Fatal(err)
			}
			cons, err := re.ConsistencyProof(700, sthAfter.Size)
			if err != nil {
				t.Fatal(err)
			}
			root700, err := re.RootAt(700)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyConsistency(700, sthAfter.Size, root700, sthAfter.RootHash, cons); err != nil {
				t.Fatal(err)
			}
			if got := re.Entries(0, re.Size()); !reflect.DeepEqual(got, entries) {
				t.Fatal("entry sequence changed across checkpointed restart")
			}

			// The log keeps going: append, checkpoint again, reopen again.
			more := mixedEntries(1500)[1200:]
			appendAll(t, re, more)
			if err := re.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenDurableLog(key, dir, checkpointedConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if _, err := ref.AppendBatch(more); err != nil {
				t.Fatal(err)
			}
			wantRoot, err := ref.RootAt(uint64(1500))
			if err != nil {
				t.Fatal(err)
			}
			gotRoot, err := re2.RootAt(re2.Size())
			if err != nil {
				t.Fatal(err)
			}
			if gotRoot != wantRoot {
				t.Fatal("second-generation checkpointed root differs from reference")
			}
		})
	}
}

// TestCheckpointCompactsColdSegments pins the compaction half: after a
// checkpoint, fully cold WAL segments are replaced by archive files
// (tail segments excepted), the checkpoint/compaction telemetry moves,
// and hydration still reproduces every entry from the archives.
func TestCheckpointCompactsColdSegments(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	entries := mixedEntries(1000)

	l, err := OpenDurableLog(key, dir, checkpointedConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, entries)

	segsBefore := countFiles(t, dir, ".wal")
	runsBefore := mCompactRuns.Value()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter := countFiles(t, dir, ".wal")
	arcs := countFiles(t, dir, archiveSuffix)
	if arcs == 0 {
		t.Fatal("checkpoint compacted nothing into archives")
	}
	if segsAfter >= segsBefore {
		t.Fatalf("cold segments not removed: %d before, %d after", segsBefore, segsAfter)
	}
	if mCompactRuns.Value() == runsBefore {
		t.Fatal("compaction run not counted")
	}
	if mCkptBytes.Value() <= 0 {
		t.Fatal("checkpoint size gauge not set")
	}
	if _, ok := mCkptLast.Time(); !ok {
		t.Fatal("checkpoint stamp not marked")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurableLog(key, dir, checkpointedConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Entries(0, re.Size()); !reflect.DeepEqual(got, entries) {
		t.Fatal("hydrated entries differ from the originals")
	}
}

// TestCheckpointEveryBackground covers the automatic path: with
// StoreConfig.CheckpointEvery set, commits past the interval spawn the
// background writer off the commit path, and a later open replays only
// a suffix.
func TestCheckpointEveryBackground(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	cfg := checkpointedConfig(0)
	cfg.CheckpointEvery = 200
	entries := mixedEntries(900)

	l, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, entries)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, checkpointFileName)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	replayedBefore := mRecoverEntries.Value()
	re, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := mRecoverEntries.Value() - replayedBefore; got >= uint64(len(entries)) {
		t.Fatalf("open replayed all %d entries despite a background checkpoint", got)
	}
	root, err := re.RootAt(re.Size())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	want, err := ref.RootAt(uint64(len(entries)))
	if err != nil {
		t.Fatal(err)
	}
	if root != want {
		t.Fatal("background-checkpointed open root differs from reference")
	}
}

// buildCheckpointedStore builds a store with two checkpoint generations
// and returns artifacts the refusal tests rewind with: the signed head
// as persisted before either checkpoint, and a copy of the first
// (older) checkpoint file taken before the second overwrote it.
func buildCheckpointedStore(t *testing.T) (key *ecdsa.PrivateKey, dir string, cfg StoreConfig, oldSTH, oldCkpt []byte) {
	t.Helper()
	key = testSigner(t)
	dir = t.TempDir()
	cfg = checkpointedConfig(0)
	l, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := mixedEntries(700)
	appendAll(t, l, all[:300])
	oldSTH, err = os.ReadFile(filepath.Join(dir, sthFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oldCkpt, err = os.ReadFile(filepath.Join(dir, checkpointFileName))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, all[300:])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return key, dir, cfg, oldSTH, oldCkpt
}

// TestCheckpointRefusals drives every way checkpoint state can lie and
// asserts the open refuses with the matching taxonomy — a bad
// checkpoint is never silently ignored.
func TestCheckpointRefusals(t *testing.T) {
	t.Run("crc-damage", func(t *testing.T) {
		key, dir, cfg, _, _ := buildCheckpointedStore(t)
		path := filepath.Join(dir, checkpointFileName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err = OpenDurableLog(key, dir, cfg)
		if !errors.Is(err, ErrStateCorrupt) {
			t.Fatalf("damaged checkpoint: got %v, want ErrStateCorrupt", err)
		}
	})

	t.Run("tamper-crc-fixed", func(t *testing.T) {
		key, dir, cfg, _, _ := buildCheckpointedStore(t)
		path := filepath.Join(dir, checkpointFileName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite a digit of the signed size claim and fix the CRC, so
		// the damage channel cannot be the one that catches it: only the
		// signature can.
		i := bytes.Index(data, []byte(`"size":`))
		if i < 0 {
			t.Fatal("no size claim in checkpoint header")
		}
		data[i+len(`"size":`)] ^= 0x01
		body := data[:len(data)-4]
		binary.BigEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, crcTable))
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err = OpenDurableLog(key, dir, cfg)
		if !errors.Is(err, ErrStateTampered) {
			t.Fatalf("tampered checkpoint: got %v, want ErrStateTampered", err)
		}
	})

	t.Run("rolled-back-head", func(t *testing.T) {
		key, dir, cfg, oldSTH, _ := buildCheckpointedStore(t)
		// Rewind sth.json to the pre-checkpoint head: a checkpoint newer
		// than the persisted head means the statedir was rolled back
		// around it.
		if err := os.WriteFile(filepath.Join(dir, sthFileName), oldSTH, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err := OpenDurableLog(key, dir, cfg)
		if !errors.Is(err, ErrStateRollback) {
			t.Fatalf("rolled-back head under a newer checkpoint: got %v, want ErrStateRollback", err)
		}
	})

	t.Run("missing-head", func(t *testing.T) {
		key, dir, cfg, _, _ := buildCheckpointedStore(t)
		if err := os.Remove(filepath.Join(dir, sthFileName)); err != nil {
			t.Fatal(err)
		}
		_, err := OpenDurableLog(key, dir, cfg)
		if !errors.Is(err, ErrStateTampered) {
			t.Fatalf("checkpoint without a persisted head: got %v, want ErrStateTampered", err)
		}
	})

	t.Run("rolled-back-checkpoint", func(t *testing.T) {
		key, dir, cfg, _, oldCkpt := buildCheckpointedStore(t)
		// Swap in the older checkpoint after compaction (run for the
		// newer one) removed cold WAL segments the old checkpoint still
		// needs: the oldest surviving segment starts past it.
		if err := os.WriteFile(filepath.Join(dir, checkpointFileName), oldCkpt, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err := OpenDurableLog(key, dir, cfg)
		if !errors.Is(err, ErrStateRollback) {
			t.Fatalf("rolled-back checkpoint past compacted history: got %v, want ErrStateRollback", err)
		}
	})
}

// TestTrimsAreDurable is the applyTrims bugfix regression: a torn tail
// found by recovery is trimmed durably (file synced, directory synced),
// so a second open finds a clean store and plans no further trims.
func TestTrimsAreDurable(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	// NoSync deliberately NOT set: this test pins the sync path.
	cfg := StoreConfig{SegmentMaxBytes: 4096}
	l, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, mixedEntries(50))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial frame at the tail.
	tail := newestSegment(t, dir)
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x7F, 0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tornBefore := mRecoverTornTails.Value()
	re, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := mRecoverTornTails.Value() - tornBefore; got != 1 {
		t.Fatalf("first reopen planned %d torn-tail trims, want 1", got)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// The trim must have stuck: the next open rediscovers nothing.
	re2, err := OpenDurableLog(key, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := mRecoverTornTails.Value() - tornBefore; got != 1 {
		t.Fatalf("trimmed tail resurfaced: %d total trims after second reopen, want 1", got)
	}
	if got := re2.Size(); got != 50 {
		t.Fatalf("size %d after trimmed reopens, want 50", got)
	}
}

// countFiles counts directory entries with the given suffix.
func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if strings.HasSuffix(de.Name(), suffix) {
			n++
		}
	}
	return n
}

// newestSegment returns the path of the lexically last .wal segment —
// the append tail for the single-stream layout.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".wal") && de.Name() > last {
			last = de.Name()
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, last)
}

// TestProofsDoNotBlockOnCommitLock pins the read-path fix: proof
// computation must not take the log's commit lock — the sequencer holds
// it across a WAL fsync, and proof endpoints stalling behind disk
// latency was the bug. The tree's own read lock is enough: nodes below
// a committed size are immutable.
func TestProofsDoNotBlockOnCommitLock(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(mixedEntries(128)); err != nil {
		t.Fatal(err)
	}
	sth := l.STH()

	// Simulate a commit mid-fsync: the write lock held for the duration.
	l.mu.Lock()
	done := make(chan error, 1)
	go func() {
		proof, err := l.InclusionProof(3, sth.Size)
		if err != nil {
			done <- err
			return
		}
		if _, err := l.ConsistencyProof(64, sth.Size); err != nil {
			done <- err
			return
		}
		if _, err := l.RootAt(100); err != nil {
			done <- err
			return
		}
		done <- VerifyInclusion(l.tree.levels[0][3], 3, sth.Size, proof, sth.RootHash)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		l.mu.Unlock()
		t.Fatal("proof computation blocked on the commit lock")
	}
	l.mu.Unlock()
}
