// Shard-stream reads: the per-shard view of the committed sequence the
// partitioned witness audit (partition.go, witness.go) runs on. A
// witness assigned shard s reads only shard s's entries — by global
// index, so every one is pinned to the served head by an ordinary
// inclusion proof — and never pays for the rest of the fleet.
package translog

import (
	"fmt"
)

// IndexedEntry pairs one committed entry's canonical bytes with its
// global log index — the shard-stream element a witness leaf-hashes and
// proves into the served head.
type IndexedEntry struct {
	Index     uint64 `json:"index"`
	Canonical []byte `json:"canonical"`
}

// ShardAuditSource serves the partitioned witness audit: shard-stream
// slices plus the inclusion proofs pinning them to a head. The
// in-process *Log and the HTTP *Client both qualify; the gossip pool
// composes a tile-assembling variant so audit proofs ride the cacheable
// tile path.
type ShardAuditSource interface {
	ShardStream(shard int, start, count uint64) (total uint64, entries []IndexedEntry, err error)
	InclusionProof(index, size uint64) ([]Hash, error)
}

// EnableShardStreams builds — and from then on maintains on every
// commit — the per-shard stream index over n shards. For a sharded
// durable store n must equal the pinned store shard count, so the
// audit-plane partition and the write-plane shards describe the same
// streams; in-memory logs (tests, benches) pick n freely. Call once
// after open, before serving shard streams.
func (l *Log) EnableShardStreams(n int) error {
	if n < 1 {
		return fmt.Errorf("translog: shard stream count %d", n)
	}
	if sn := l.StoreShards(); sn > 1 && sn != n {
		return fmt.Errorf("translog: shard stream count %d does not match the pinned store shard count %d", n, sn)
	}
	// The index covers the whole committed sequence, so a checkpointed
	// open hydrates its cold prefix once here instead of on the first
	// cold audit read.
	return l.withHydration(func() error {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.entries.base > 0 {
			return errColdRange
		}
		idx := make([][]uint64, n)
		for i := uint64(0); i < l.entries.count(); i++ {
			s := ShardOf(l.entries.at(i).Host, n)
			idx[s] = append(idx[s], i)
		}
		l.shardStreams, l.shardIdx = n, idx
		return nil
	})
}

// ShardStreams reports the enabled shard-stream count (0: disabled).
func (l *Log) ShardStreams() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.shardStreams
}

// ShardStream returns shard s's stream slice [start, start+count) —
// each element the canonical entry bytes plus its global index — and
// the stream's current total length. A start at or beyond the total
// returns only the total, which is how a witness discovers a shard
// stream regressed.
func (l *Log) ShardStream(shard int, start, count uint64) (uint64, []IndexedEntry, error) {
	var total uint64
	var out []IndexedEntry
	err := l.withHydration(func() error {
		l.mu.RLock()
		defer l.mu.RUnlock()
		if l.shardStreams == 0 {
			return fmt.Errorf("translog: shard streams not enabled")
		}
		if shard < 0 || shard >= l.shardStreams {
			return fmt.Errorf("translog: shard %d out of range [0, %d)", shard, l.shardStreams)
		}
		idx := l.shardIdx[shard]
		total = uint64(len(idx))
		out = nil
		if start >= total || count == 0 {
			return nil
		}
		end := start + count
		if end > total || end < start {
			end = total
		}
		if idx[start] < l.entries.base {
			return errColdRange
		}
		out = make([]IndexedEntry, 0, end-start)
		for _, gi := range idx[start:end] {
			out = append(out, IndexedEntry{Index: gi, Canonical: append([]byte(nil), l.entries.payload(gi)...)})
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return total, out, nil
}
