package translog

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vnfguard/internal/obs"
)

// TestScrapeNeverBlocksSequencerCommit pins the telemetry contract: a
// /metrics scrape (which snapshots the registry under its lock) must
// never stall a sequencer commit, because the hot path only touches
// pre-resolved atomic instruments — no registry map, no registry mutex.
// Run under -race this also exercises concurrent instrument writes
// against the exposition walk.
func TestScrapeNeverBlocksSequencerCommit(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{Shards: 4, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sa := NewShardedAppender(l, ShardedAppenderConfig{Shards: 4, FlushInterval: time.Millisecond})

	stop := make(chan struct{})
	var scrapes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := obs.Default().WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			obs.Default().Snapshot()
			scrapes.Add(1)
		}
	}()

	before := mAppendedEntries.Value()
	cyclesBefore, commitsBefore, fsyncsBefore := mCycles.Value(), mCommits.Value(), mWALFsyncs.Value()
	const entries = 512
	for i := 0; i < entries; i++ {
		e := Entry{Type: EntryAttestOK, Actor: "vnf", Host: fmt.Sprintf("host-%d", i%8), Detail: "OK"}
		if err := sa.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := mAppendedEntries.Value() - before; got < entries {
		t.Fatalf("translog_appended_entries_total grew by %d, want >= %d", got, entries)
	}
	if scrapes.Load() == 0 {
		t.Fatal("scraper never completed a pass while the sequencer committed")
	}
	// Every phase must have recorded at least one observation per cycle.
	for _, h := range []*obs.Histogram{mPhaseGather, mPhaseMarshal, mPhaseMerkle, mPhaseSign, mPhaseWALSync, mPhaseAnchor} {
		if h.Count() == 0 {
			t.Fatal("a commit phase histogram recorded nothing during the workload")
		}
	}
	cycles, commits, fsyncs := mCycles.Value()-cyclesBefore, mCommits.Value()-commitsBefore, mWALFsyncs.Value()-fsyncsBefore
	if cycles == 0 || commits == 0 || fsyncs != 0 {
		// NoSync store: cycles and commits count, fsyncs must not.
		t.Fatalf("cycles=%d commits=%d fsyncs=%d", cycles, commits, fsyncs)
	}
}

// TestSlowCycleLogEmitsTrace pins the slow-cycle diagnostic: with a
// 1ns budget every cycle is over budget, and each emitted line carries
// the structured phase breakdown and shard contributions.
func TestSlowCycleLogEmitsTrace(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	slow := mSlowCycles.Value()
	sa := NewShardedAppender(l, ShardedAppenderConfig{
		Shards:          2,
		FlushInterval:   time.Millisecond,
		SlowCycleBudget: time.Nanosecond,
		SlowCycleLog: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err := sa.Append(Entry{Type: EntryAttestOK, Actor: "vnf", Host: "host-a", Detail: "OK"}); err != nil {
		t.Fatal(err)
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no slow-cycle line emitted with a 1ns budget")
	}
	line := lines[0]
	for _, want := range []string{"slow sequencer cycle", `"entries":1`, `"phases_ms"`, `"gather"`, `"wal_sync"`, `"shards"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-cycle line missing %q:\n%s", want, line)
		}
	}
	if mSlowCycles.Value() <= slow {
		t.Fatal("translog_sequencer_slow_cycles_total did not grow")
	}
}

// TestRecoveryAndGossipCounters drives a crash-recovery reopen and a
// gossip round and checks the series the README documents for them.
func TestRecoveryAndGossipCounters(t *testing.T) {
	key := testSigner(t)
	dir := t.TempDir()
	l, err := OpenDurableLog(key, dir, StoreConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Entry{Type: EntryAttestOK, Actor: "vnf", Host: "h", Detail: "OK"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	replayed := mRecoverEntries.Value()
	re, err := OpenDurableLog(key, dir, StoreConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := mRecoverEntries.Value() - replayed; got != 3 {
		t.Fatalf("translog_recovery_replayed_entries_total grew by %d, want 3", got)
	}
	if mRecoverSeconds.Count() == 0 {
		t.Fatal("translog_recovery_seconds recorded nothing")
	}
	if _, ok := mRecoverLast.Time(); !ok {
		t.Fatal("translog_recovery_last_unix_seconds not stamped")
	}

	// One gossip round against the reopened log via an in-process server.
	logSrv := httptest.NewServer(Handler(re))
	defer logSrv.Close()
	w := NewWitness(&key.PublicKey)
	g := NewGossipPool("w0", w, NewClient(logSrv.URL, &key.PublicKey))
	exchanges := mGossipExchanges.Value()
	if err := g.Exchange(); err != nil {
		t.Fatal(err)
	}
	if mGossipExchanges.Value() <= exchanges {
		t.Fatal("translog_gossip_exchanges_total did not grow")
	}
	if mGossipSeconds.Count() == 0 {
		t.Fatal("translog_gossip_exchange_seconds recorded nothing")
	}
	if got := mWitnessHeadSize.Value(); got != 3 {
		t.Fatalf("translog_witness_head_size = %d, want 3", got)
	}
}
