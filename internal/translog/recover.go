package translog

import (
	"crypto"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Recovery: opening a durable log replays every segment, truncates a torn
// tail record, rebuilds the Merkle tree and serial index, and verifies
// the recomputed root against the durably persisted signed tree head.
// The persisted head is the local anchor of the same guarantee the
// witness provides remotely — a statedir restored from an old snapshot
// (rollback) or edited in place (tamper) produces a root that cannot
// match the head, and the open refuses loudly instead of re-serving the
// rewritten history.

// recovered is the verified disk state handed from recovery to the Log.
type recovered struct {
	entries []Entry
	// sth is the persisted head when it covered exactly the recovered
	// size; when the disk holds entries beyond the head (a crash between
	// the record fsync and the head replacement) sthStale is true and the
	// caller must sign a fresh head over the full recovered tree.
	sth      SignedTreeHead
	sthStale bool
	// tail describes the segment appends resume into.
	tailFirst uint64
	tailClean int64
	hasTail   bool
}

// recoverDir replays and verifies the store directory. pub is the log's
// tree-head verification key (the CA public key).
func recoverDir(dir string, pub *ecdsa.PublicKey) (*recovered, error) {
	sth, haveSTH, err := loadSTH(dir)
	if err != nil {
		return nil, err
	}
	firsts, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if !haveSTH {
		if len(firsts) > 0 {
			// Segments can only exist after the genesis head was
			// persisted, so a missing head alongside data is deletion,
			// not a fresh directory.
			return nil, fmt.Errorf("%w: %d segment file(s) but no persisted tree head", ErrStateTampered, len(firsts))
		}
		return &recovered{sthStale: true}, nil
	}
	if err := sth.Verify(pub); err != nil {
		return nil, fmt.Errorf("%w: persisted tree head signature invalid", ErrStateTampered)
	}

	rec := &recovered{sth: sth}
	// tornPath defers the physical truncation of a torn tail until after
	// the root-vs-head verification: an open that is about to be refused
	// must not modify the store it refuses — it is incident evidence.
	var tornPath string
	var tornAt int64
	for i, first := range firsts {
		if first != uint64(len(rec.entries)) {
			return nil, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrStateCorrupt, segmentName(first), first, len(rec.entries))
		}
		path := filepath.Join(dir, segmentName(first))
		payloads, clean, err := readSegment(path)
		last := i == len(firsts)-1
		switch {
		case err == nil:
		case errors.Is(err, errTornTail) && last:
			// A crash mid-append leaves a partial final record; cut it
			// (after verification) so appends resume on a frame boundary.
			tornPath, tornAt = path, int64(clean)
		case errors.Is(err, errTornTail):
			return nil, fmt.Errorf("%w: segment %s ends mid-record but is not the tail",
				ErrStateCorrupt, segmentName(first))
		default:
			return nil, err
		}
		for _, p := range payloads {
			e, err := UnmarshalEntry(p)
			if err != nil {
				return nil, fmt.Errorf("%w: entry %d undecodable: %v", ErrStateCorrupt, len(rec.entries), err)
			}
			rec.entries = append(rec.entries, e)
		}
		if last {
			rec.tailFirst, rec.tailClean, rec.hasTail = first, int64(clean), true
		}
	}

	size := uint64(len(rec.entries))
	if size < sth.Size {
		return nil, fmt.Errorf("%w: %d durable entries but signed tree head covers %d",
			ErrStateRollback, size, sth.Size)
	}
	// Verify the recomputed root at the head's size: entries beyond it
	// (persisted but not yet headed when the process died) are legitimate,
	// but the covered prefix must hash to exactly what was signed.
	//
	// Threat-model boundary: the beyond-head tail is authenticated only
	// by its CRC framing, so an attacker with statedir write access could
	// append well-formed records there and have recovery re-sign them.
	// That attacker already holds the statedir's CA key in the
	// multi-process deployment, so no local check can beat them; catching
	// it needs a root of trust off this disk — the witness today, and the
	// ROADMAP's tree-head gossip / enclave-sealed head next.
	t := newTree()
	for _, e := range rec.entries {
		t.append(LeafHash(e.Marshal()))
	}
	root, err := t.rootAt(sth.Size)
	if err != nil {
		return nil, err
	}
	if root != sth.RootHash {
		return nil, fmt.Errorf("%w: recomputed root at size %d does not match persisted tree head",
			ErrStateTampered, sth.Size)
	}
	if tornPath != "" {
		if err := os.Truncate(tornPath, tornAt); err != nil {
			return nil, fmt.Errorf("translog: truncating torn tail: %w", err)
		}
	}
	rec.sthStale = size != sth.Size
	return rec, nil
}

// OpenDurableLog opens (creating if needed) a write-ahead durable log in
// dir, signed by signer. It replays and verifies the existing disk state
// first — see the package recovery notes — and refuses to open a rolled
// back (ErrStateRollback), rewritten (ErrStateTampered) or damaged
// (ErrStateCorrupt) store. Every committed batch is durably persisted
// (records fsynced, latest signed tree head atomically replaced) before
// AppendBatch returns, so the batched Appender amortises the fsync the
// same way it amortises the tree-head signature. Close the returned log
// to release the store.
func OpenDurableLog(signer crypto.Signer, dir string, cfg StoreConfig) (*Log, error) {
	pub, ok := signer.Public().(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("translog: signer key type %T unsupported for durable log", signer.Public())
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("translog: creating store dir: %w", err)
	}
	rec, err := recoverDir(dir, pub)
	if err != nil {
		return nil, err
	}
	store, err := openStoreDir(dir, cfg, uint64(len(rec.entries)), rec.tailFirst, rec.tailClean, rec.hasTail)
	if err != nil {
		return nil, err
	}

	l := &Log{
		signer:   signer,
		tree:     newTree(),
		bySerial: make(map[string][]uint64),
		revoked:  make(map[string]bool),
	}
	for i, e := range rec.entries {
		l.tree.append(LeafHash(e.Marshal()))
		if e.Serial != "" {
			l.bySerial[e.Serial] = append(l.bySerial[e.Serial], uint64(i))
			if e.Type == EntryRevoke {
				l.revoked[e.Serial] = true
			}
		}
	}
	l.entries = rec.entries
	size := uint64(len(rec.entries))
	if rec.sthStale {
		// Fresh store, or durable entries past the persisted head: sign
		// (and persist) a head covering everything recovered.
		root, err := l.tree.rootAt(size)
		if err != nil {
			store.Close()
			return nil, err
		}
		sth, err := l.signHead(size, root)
		if err != nil {
			store.Close()
			return nil, err
		}
		if err := store.persistSTH(sth); err != nil {
			store.Close()
			return nil, err
		}
		l.sth = sth
	} else {
		l.sth = rec.sth
	}
	l.store = store
	return l, nil
}
