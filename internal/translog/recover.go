package translog

import (
	"crypto"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Recovery: opening a durable log replays every segment, truncates a torn
// tail record, rebuilds the Merkle tree and serial index, and then hands
// the recovered state to the trust-anchor chain (anchor.go) for
// verification. The built-in sthAnchor checks the recomputed root
// against the durably persisted signed tree head — the local anchor of
// the same guarantee the witness provides remotely — and any configured
// extra anchors (witness head, enclave-sealed counter) check their own
// independently rooted memories, so a statedir restored from an old
// snapshot (rollback) or edited in place (tamper) is refused loudly by
// whichever anchor still remembers the newer history.
//
// A sharded store replays one segment stream per host slot and
// interleaves them back into the global order via the per-record global
// index. Each stream gets the same refusals the single stream gets —
// torn tails may only be at a stream's own end, interior damage is
// corruption — and the crash window widens in one understood way: a
// crash mid-cycle can land some streams' records and not others', so
// the records beyond the persisted head may have index gaps. Recovery
// keeps the longest contiguous prefix and treats everything past the
// first gap as the torn tail it is; the anchors see the prefix, so a
// "gap" that would cut into committed history is still refused as a
// rollback before anything is touched.

// recovered is the verified disk state handed from recovery to the Log.
type recovered struct {
	entries []Entry
	// payloads holds each entry's canonical encoding exactly as the WAL
	// replay produced it — the Log adopts these bytes directly, so
	// recovery never re-marshals what it already read and validated.
	payloads [][]byte
	// tree is the Merkle tree rebuilt over the recovered entries; the
	// Log adopts it directly instead of hashing everything twice.
	tree *tree
	// sth is the persisted head when it covered exactly the recovered
	// size; when the disk holds entries beyond the head (a crash between
	// the record fsync and the head replacement) sthStale is true and the
	// caller must sign a fresh head over the full recovered tree.
	sth      SignedTreeHead
	sthStale bool
	// shards is the layout found on disk (or configured for a fresh
	// store): 0 for the single stream, else the per-host stream count.
	shards int
	// tails describes where appends resume: one entry for the single
	// layout, shards entries otherwise.
	tails []streamTail
	// ckpt is the verified checkpoint the replay was based from (nil for
	// a full replay). With a checkpoint, entries/payloads hold only the
	// suffix — global ordinals [ckpt.size, size) — and tree is seeded
	// from the checkpoint's frozen subtree roots.
	ckpt *checkpoint
}

// size is the recovered global entry count: the checkpoint base plus
// the replayed suffix.
func (r *recovered) size() uint64 {
	if r.ckpt != nil {
		return r.ckpt.size + uint64(len(r.entries))
	}
	return uint64(len(r.entries))
}

// streamTail is one stream's resumption point.
type streamTail struct {
	// count is the number of records surviving in the stream.
	count uint64
	// tailFirst/tailClean locate the open tail segment and its intact
	// length; hasTail is false for a stream with no segment files.
	tailFirst uint64
	tailClean int64
	hasTail   bool
}

// trimOp is a deferred physical mutation of the store: recovery must not
// modify a store it is about to refuse (it is incident evidence), so
// torn-tail truncations and beyond-gap removals are collected and
// applied only after every anchor accepted the state.
type trimOp struct {
	path     string
	truncate int64 // truncate to this length...
	remove   bool  // ...or remove the file entirely
}

// applyTrims performs the deferred mutations durably: each truncated
// file is fsynced and the parent directory is fsynced once at the end
// (removals are only durable when the directory is). Without the syncs
// a crash right after recovery can resurrect the trimmed tail, and the
// next open re-discovers — and re-reports — torn state this one already
// repaired.
func applyTrims(dir string, trims []trimOp, noSync bool) error {
	for _, op := range trims {
		if op.remove {
			if err := os.Remove(op.path); err != nil {
				return fmt.Errorf("translog: removing uncommitted segment: %w", err)
			}
			continue
		}
		f, err := os.OpenFile(op.path, os.O_RDWR, 0o600)
		if err != nil {
			return fmt.Errorf("translog: truncating torn tail: %w", err)
		}
		if err := f.Truncate(op.truncate); err != nil {
			f.Close()
			return fmt.Errorf("translog: truncating torn tail: %w", err)
		}
		if !noSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("translog: syncing trimmed tail: %w", err)
			}
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("translog: closing trimmed tail: %w", err)
		}
	}
	if len(trims) > 0 && !noSync {
		return syncDir(dir)
	}
	return nil
}

// recoverDir replays the store directory — whichever layout it holds —
// and verifies it against the trust-anchor chain (the built-in sthAnchor
// first, then any extras).
func recoverDir(dir string, cfg StoreConfig, sthAnchor *sthAnchor, extra []TrustAnchor) (*recovered, error) {
	recoverStart := time.Now()
	if cfg.Shards > maxShardSlots {
		//lint:allow errtaxonomy config validation rejecting the open request, not a classification of on-disk state
		return nil, fmt.Errorf("translog: %d shards exceeds the %d-slot segment naming limit", cfg.Shards, maxShardSlots)
	}
	firsts, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(firsts) > 0 && len(shardFirsts) > 0 {
		return nil, fmt.Errorf("%w: store holds both single-stream and sharded segments", ErrStateCorrupt)
	}
	metaShards, haveMeta, err := loadShardCount(dir)
	if err != nil {
		return nil, err
	}
	// A verified checkpoint turns the replay into a suffix replay: the
	// cold prefix is summarized by its frozen subtree roots, and only
	// records at or past the checkpoint are decoded. loadCheckpoint
	// already classified every way the file can lie (ErrStateCorrupt /
	// ErrStateTampered / ErrStateRollback) — a bad checkpoint refuses
	// the open, it is never silently ignored.
	ckpt, err := loadCheckpoint(dir, sthAnchor.pub)
	if err != nil {
		return nil, err
	}
	var rec *recovered
	var trims []trimOp
	var segments int
	switch {
	case haveMeta:
		// The pinned count from store creation wins over whatever
		// cfg.Shards says today: the layout — and the host→stream
		// routing — is fixed for the store's lifetime.
		if len(firsts) > 0 {
			return nil, fmt.Errorf("%w: single-stream segments in a store pinned to %d shards", ErrStateCorrupt, metaShards)
		}
		if ckpt != nil && len(ckpt.streamCounts) != metaShards {
			return nil, fmt.Errorf("%w: checkpoint covers %d segment streams in a store pinned to %d shards",
				ErrStateCorrupt, len(ckpt.streamCounts), metaShards)
		}
		rec, trims, segments, err = recoverSharded(dir, metaShards, shardFirsts, ckpt)
	case len(shardFirsts) > 0 || (len(firsts) == 0 && cfg.Shards > 1 && ckpt == nil):
		nShards := cfg.Shards
		if nShards <= 1 {
			nShards = 2 // layout is sharded regardless of what cfg says now
		}
		for shard := range shardFirsts {
			if shard >= nShards {
				nShards = shard + 1
			}
		}
		if ckpt != nil && len(ckpt.streamCounts) != nShards {
			return nil, fmt.Errorf("%w: checkpoint covers %d segment streams but the store holds %d",
				ErrStateCorrupt, len(ckpt.streamCounts), nShards)
		}
		rec, trims, segments, err = recoverSharded(dir, nShards, shardFirsts, ckpt)
	default:
		if ckpt != nil && len(ckpt.streamCounts) != 0 {
			return nil, fmt.Errorf("%w: sharded checkpoint (%d streams) in a single-stream store",
				ErrStateCorrupt, len(ckpt.streamCounts))
		}
		rec, trims, segments, err = recoverSingle(dir, firsts, ckpt)
	}
	if err != nil {
		return nil, err
	}

	if rec.ckpt != nil {
		rec.tree = newTreeFromFrozen(rec.ckpt.size, rec.ckpt.blocks)
	} else {
		rec.tree = newTree()
	}
	for _, p := range rec.payloads {
		rec.tree.append(LeafHash(p))
	}
	size := rec.size()
	// Anchors only ever remember heads at or past the checkpoint — a
	// checkpoint is written only after its head was committed through
	// the whole chain — so rootAt below the checkpoint means the anchor's
	// own memory predates a checkpoint that could not exist without it.
	rootAt := func(n uint64) (Hash, error) {
		h, err := rec.tree.rootAt(n)
		if errors.Is(err, errColdRange) {
			return Hash{}, fmt.Errorf("%w: anchor remembers a head at size %d, below the checkpoint at %d",
				ErrStateTampered, n, rec.ckpt.size)
		}
		return h, err
	}
	state := &RecoveredState{Size: size, Segments: segments, rootAt: rootAt}
	if err := sthAnchor.CheckRecovery(state); err != nil {
		return nil, err
	}
	for _, a := range extra {
		if err := a.CheckRecovery(state); err != nil {
			return nil, err
		}
	}
	// Physical mutations only after every anchor accepted: trim the torn
	// material, and pin a freshly created sharded layout's stream count.
	if err := applyTrims(dir, trims, cfg.NoSync); err != nil {
		return nil, err
	}
	if rec.shards > 0 && !haveMeta {
		if err := saveShardCount(dir, rec.shards, cfg.NoSync); err != nil {
			return nil, err
		}
	}
	sth, have := sthAnchor.Persisted()
	rec.sth = sth
	rec.sthStale = !have || size != sth.Size
	mRecoverEntries.Add(uint64(len(rec.entries)))
	if rec.ckpt != nil {
		mRecoverSuffixEntries.Add(uint64(len(rec.entries)))
	}
	for _, op := range trims {
		if op.remove {
			mRecoverRemovedSegs.Inc()
		} else {
			mRecoverTornTails.Inc()
		}
	}
	mRecoverSeconds.Observe(time.Since(recoverStart))
	mRecoverLast.Mark()
	return rec, nil
}

// recoverSingle replays the legacy single-stream layout. With a
// checkpoint, records below it are skipped without decoding (they are
// summarized by the frozen subtree roots) and compaction may already
// have removed whole cold segments, so the oldest surviving segment
// need not start at zero — only at or below the checkpoint.
func recoverSingle(dir string, firsts []uint64, ckpt *checkpoint) (*recovered, []trimOp, int, error) {
	rec := &recovered{shards: 0, ckpt: ckpt}
	base := uint64(0)
	if ckpt != nil {
		base = ckpt.size
	}
	var trims []trimOp
	ordinal := base // global ordinal of the next record to read
	for i, first := range firsts {
		switch {
		case i == 0 && ckpt == nil && first != 0:
			return nil, nil, 0, fmt.Errorf("%w: segment %s starts at %d, want 0",
				ErrStateCorrupt, segmentName(first), first)
		case i == 0 && first > base:
			// Compaction only removes segments below a checkpoint that
			// was newer than them, so a WAL that resumes past the
			// checkpoint means checkpoint.bin was swapped for an older
			// one after the cold segments it summarized were removed.
			return nil, nil, 0, fmt.Errorf("%w: checkpoint covers %d entries but the oldest WAL segment starts at %d",
				ErrStateRollback, base, first)
		case i == 0:
			ordinal = first
		case first != ordinal:
			return nil, nil, 0, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrStateCorrupt, segmentName(first), first, ordinal)
		}
		path := filepath.Join(dir, segmentName(first))
		payloads, clean, err := readSegment(path)
		last := i == len(firsts)-1
		switch {
		case err == nil:
		case errors.Is(err, errTornTail) && last:
			// A crash mid-append leaves a partial final record; cut it
			// (after verification) so appends resume on a frame boundary.
			trims = append(trims, trimOp{path: path, truncate: int64(clean)})
		case errors.Is(err, errTornTail):
			return nil, nil, 0, fmt.Errorf("%w: segment %s ends mid-record but is not the tail",
				ErrStateCorrupt, segmentName(first))
		default:
			return nil, nil, 0, err
		}
		for _, p := range payloads {
			if ordinal < base {
				ordinal++ // cold record, summarized by the checkpoint
				continue
			}
			e, err := unmarshalEntry(p)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("%w: entry %d undecodable: %v", ErrStateCorrupt, ordinal, err)
			}
			rec.entries = append(rec.entries, e)
			rec.payloads = append(rec.payloads, p)
			ordinal++
		}
		if last {
			rec.tails = []streamTail{{
				count: ordinal, tailFirst: first, tailClean: int64(clean), hasTail: true,
			}}
		}
	}
	if rec.tails == nil {
		rec.tails = []streamTail{{count: base}}
	}
	return rec, trims, len(firsts), nil
}

// shardRecord is one decoded sharded record, located precisely enough to
// trim everything from it onward out of its stream.
type shardRecord struct {
	index   uint64
	entry   Entry
	payload []byte // the entry's canonical encoding as replayed
	shard   int
	// seg is the position of the record's segment in the shard's sorted
	// segment list; off is the record's byte offset within that segment.
	seg int
	off int64
}

// recoverSharded replays every per-host stream and interleaves the
// records back into the global order. nShards is the store's pinned (or
// derived) stream count. With a checkpoint, each stream skips records
// whose global index is below it (the checkpoint's per-stream counts
// say how many of each stream's ordinals are cold, so a compacted
// stream may resume — or be entirely empty — past ordinal zero).
func recoverSharded(dir string, nShards int, shardFirsts map[int][]uint64, ckpt *checkpoint) (*recovered, []trimOp, int, error) {
	for shard := range shardFirsts {
		if shard >= nShards {
			return nil, nil, 0, fmt.Errorf("%w: segment stream %d in a store with %d shard slots",
				ErrStateCorrupt, shard, nShards)
		}
	}
	base := uint64(0)
	bc := make([]uint64, nShards) // per-stream cold record counts
	if ckpt != nil {
		base = ckpt.size
		copy(bc, ckpt.streamCounts)
	}

	var all []shardRecord
	var trims []trimOp
	segments := 0
	// counts/lastSeg/lastClean track each stream's pre-trim shape.
	counts := make([]uint64, nShards)
	segPaths := make([][]string, nShards)
	tailClean := make([]int64, nShards)
	for shard := 0; shard < nShards; shard++ {
		counts[shard] = bc[shard] // fully compacted (or untouched) stream
		firsts := shardFirsts[shard]
		segments += len(firsts)
		prevIndex := uint64(0)
		haveRecord := false
		for i, first := range firsts {
			switch {
			case i == 0 && ckpt == nil && first != 0:
				return nil, nil, 0, fmt.Errorf("%w: segment %s starts at stream ordinal %d, want 0",
					ErrStateCorrupt, shardSegmentName(shard, first), first)
			case i == 0 && first > bc[shard]:
				return nil, nil, 0, fmt.Errorf("%w: checkpoint covers %d records of stream %d but its oldest segment starts at %d",
					ErrStateRollback, bc[shard], shard, first)
			case i == 0:
				counts[shard] = first
			case first != counts[shard]:
				return nil, nil, 0, fmt.Errorf("%w: segment %s starts at stream ordinal %d, want %d",
					ErrStateCorrupt, shardSegmentName(shard, first), first, counts[shard])
			}
			path := filepath.Join(dir, shardSegmentName(shard, first))
			segPaths[shard] = append(segPaths[shard], path)
			payloads, clean, err := readSegment(path)
			last := i == len(firsts)-1
			switch {
			case err == nil:
			case errors.Is(err, errTornTail) && last:
				trims = append(trims, trimOp{path: path, truncate: int64(clean)})
			case errors.Is(err, errTornTail):
				return nil, nil, 0, fmt.Errorf("%w: segment %s ends mid-record but is not the stream tail",
					ErrStateCorrupt, shardSegmentName(shard, first))
			default:
				return nil, nil, 0, err
			}
			off := int64(0)
			for _, p := range payloads {
				index, body, err := splitIndexedRecord(p)
				if err != nil {
					return nil, nil, 0, err
				}
				if haveRecord && index <= prevIndex {
					return nil, nil, 0, fmt.Errorf("%w: stream %d global index %d not increasing (previous %d)",
						ErrStateCorrupt, shard, index, prevIndex)
				}
				prevIndex, haveRecord = index, true
				if index >= base {
					e, uerr := unmarshalEntry(body)
					if uerr != nil {
						return nil, nil, 0, fmt.Errorf("%w: entry %d undecodable: %v", ErrStateCorrupt, index, uerr)
					}
					all = append(all, shardRecord{index: index, entry: e, payload: body, shard: shard, seg: i, off: off})
				}
				off += recordHeaderLen + int64(len(p))
				counts[shard]++
			}
			if last {
				tailClean[shard] = int64(clean)
			}
		}
	}

	// Interleave: sort by global index, refuse duplicates, and keep the
	// longest contiguous prefix from zero. Records past the first gap can
	// only be the torn remains of the last uncommitted cycle — per-stream
	// indices are increasing, so they form a suffix of each stream — and
	// are trimmed like any other torn tail once the anchors accept. If
	// the gap cut into committed history, the prefix is shorter than the
	// persisted head and the anchors refuse before any trim runs.
	sort.Slice(all, func(i, j int) bool { return all[i].index < all[j].index })
	for i := 1; i < len(all); i++ {
		if all[i].index == all[i-1].index {
			return nil, nil, 0, fmt.Errorf("%w: global index %d appears in stream %d and stream %d",
				ErrStateCorrupt, all[i].index, all[i-1].shard, all[i].shard)
		}
	}
	prefix := len(all)
	for i, r := range all {
		if r.index != base+uint64(i) {
			prefix = i
			break
		}
	}

	rec := &recovered{shards: nShards, ckpt: ckpt}
	for _, r := range all[:prefix] {
		rec.entries = append(rec.entries, r.entry)
		rec.payloads = append(rec.payloads, r.payload)
	}
	if prefix < len(all) {
		// Plan the per-stream cuts: for each stream, everything from its
		// first beyond-prefix record onward goes — truncate that record's
		// segment at its offset, drop the stream's later segments.
		cut := make(map[int]shardRecord)
		dropped := make(map[int]uint64)
		for _, r := range all[prefix:] {
			if c, ok := cut[r.shard]; !ok || r.index < c.index {
				cut[r.shard] = r
			}
			dropped[r.shard]++
		}
		for shard, c := range cut {
			// The cut replaces any torn-tail trim already planned for the
			// stream's last segment: the torn bytes sit after the cut.
			kept := trims[:0]
			for _, op := range trims {
				if len(segPaths[shard]) > 0 && op.path == segPaths[shard][len(segPaths[shard])-1] {
					continue
				}
				kept = append(kept, op)
			}
			trims = kept
			trims = append(trims, trimOp{path: segPaths[shard][c.seg], truncate: c.off})
			for i := c.seg + 1; i < len(segPaths[shard]); i++ {
				trims = append(trims, trimOp{path: segPaths[shard][i], remove: true})
			}
			counts[shard] -= dropped[shard]
			segPaths[shard] = segPaths[shard][:c.seg+1]
			tailClean[shard] = c.off
		}
	}

	rec.tails = make([]streamTail, nShards)
	for shard := 0; shard < nShards; shard++ {
		tail := streamTail{count: counts[shard]}
		if n := len(segPaths[shard]); n > 0 {
			tail.hasTail = true
			_, first, _ := parseShardSegmentName(filepath.Base(segPaths[shard][n-1]))
			tail.tailFirst = first
			tail.tailClean = tailClean[shard]
		}
		rec.tails[shard] = tail
	}
	return rec, trims, segments, nil
}

// OpenDurableLog opens (creating if needed) a write-ahead durable log in
// dir, signed by signer. It replays and verifies the existing disk state
// first — see the package recovery notes — and refuses to open a rolled
// back (ErrStateRollback), rewritten (ErrStateTampered) or damaged
// (ErrStateCorrupt) store; extra trust anchors configured via
// cfg.Anchors add their own refusals (a witness anchor re-raises
// ErrStateRollback from its separate statedir, the sealed-counter
// anchor raises ErrSealedRollback even when every file on disk was
// rewound consistently). Every committed batch is durably persisted
// (records fsynced, latest signed tree head atomically replaced, every
// anchor updated) before AppendBatch returns, so the batched Appender
// amortises the fsync the same way it amortises the tree-head
// signature. With cfg.Shards > 1 the WAL is split into per-host segment
// streams — see StoreConfig.Shards and the ShardedAppender. Close the
// returned log to release the store and anchors.
func OpenDurableLog(signer crypto.Signer, dir string, cfg StoreConfig) (*Log, error) {
	pub, ok := signer.Public().(*ecdsa.PublicKey)
	if !ok {
		//lint:allow errtaxonomy caller-argument validation before any disk state is read; no taxonomy applies
		return nil, fmt.Errorf("translog: signer key type %T unsupported for durable log", signer.Public())
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("translog: creating store dir: %w", err)
	}
	// Until a Store owns them, refusing or failing the open must still
	// release anchors holding resources (a refused recovery is this
	// feature's main path — it must not leak the sealed anchor's
	// enclave).
	closeAnchors := func() {
		for _, a := range cfg.Anchors {
			if c, ok := a.(io.Closer); ok {
				c.Close()
			}
		}
	}
	sthAnchor := newSTHAnchor(dir, pub)
	sthAnchor.noSync = cfg.NoSync
	rec, err := recoverDir(dir, cfg, sthAnchor, cfg.Anchors)
	if err != nil {
		closeAnchors()
		return nil, err
	}
	anchors := append([]TrustAnchor{sthAnchor}, cfg.Anchors...)
	store, err := openStoreDir(dir, cfg, anchors, rec)
	if err != nil {
		closeAnchors()
		return nil, err
	}

	l := &Log{
		signer:   signer,
		tree:     rec.tree,
		issuance: make(map[string]uint64),
		revoked:  make(map[string]bool),
	}
	base := uint64(0)
	if rec.ckpt != nil {
		// The cold prefix stays on disk: the serial indexes come from the
		// checkpoint's (signature-covered) snapshot, the arena starts at
		// the checkpoint base, and frozenRoot pins what a later hydration
		// of the archived entries must reproduce.
		base = rec.ckpt.size
		l.frozenRoot = rec.ckpt.sth.RootHash
		l.entries.base = base
		for k, v := range rec.ckpt.issuance {
			l.issuance[k] = v
		}
		for k := range rec.ckpt.revoked {
			l.revoked[k] = true
		}
		store.lastCkpt.Store(base)
	}
	for i, e := range rec.entries {
		l.indexEntry(e, base+uint64(i))
		// The arena adopts the replayed canonical bytes — the same bytes
		// the recovery pass hashed into the rebuilt tree.
		l.entries.add(rec.payloads[i])
	}
	size := rec.size()
	sth := rec.sth
	if rec.sthStale {
		// Fresh store, or durable entries past the persisted head: sign
		// a head covering everything recovered.
		root, err := l.tree.rootAt(size)
		if err != nil {
			store.Close()
			return nil, err
		}
		sth, err = l.signHead(size, root)
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	// Re-commit the current head through the whole anchor chain even
	// when it was not stale: a crash inside a previous commit can leave
	// a later anchor (witness head, sealed counter) one batch behind
	// sth.json, and a lagging sealed pin is a rollback window — a
	// snapshot of the lagging state would pass every anchor. After any
	// successful open, every anchor pins exactly the recovered head.
	if err := store.commitHead(sth); err != nil {
		store.Close()
		return nil, err
	}
	l.sth = sth
	l.store = store
	l.committed.Store(size)
	// Resume tile publication where the previous incarnation stopped:
	// the watermark keeps a reopen from re-deriving (and re-writing)
	// thousands of byte-identical tiles, and from hydrating the cold
	// prefix just to cover tiles that are already on disk.
	l.tileMark.Store(store.loadTileMark())
	if l.tilesDue(size) && l.tileBusy.CompareAndSwap(false, true) {
		l.tileWG.Add(1)
		go l.publishTilesBG()
	}
	if rec.ckpt != nil && cfg.CheckpointEvery > 0 {
		// Finish whatever compaction a crash interrupted: records the
		// checkpoint already summarizes may still sit in cold WAL
		// segments. Off the open path; Close waits it out.
		if l.ckptBusy.CompareAndSwap(false, true) {
			l.ckptWG.Add(1)
			go func() {
				defer l.ckptWG.Done()
				defer l.ckptBusy.Store(false)
				_ = l.store.compact(l.store.lastCkpt.Load())
			}()
		}
	}
	return l, nil
}
