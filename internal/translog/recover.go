package translog

import (
	"crypto"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Recovery: opening a durable log replays every segment, truncates a torn
// tail record, rebuilds the Merkle tree and serial index, and then hands
// the recovered state to the trust-anchor chain (anchor.go) for
// verification. The built-in STHAnchor checks the recomputed root
// against the durably persisted signed tree head — the local anchor of
// the same guarantee the witness provides remotely — and any configured
// extra anchors (witness head, enclave-sealed counter) check their own
// independently rooted memories, so a statedir restored from an old
// snapshot (rollback) or edited in place (tamper) is refused loudly by
// whichever anchor still remembers the newer history.
//
// A sharded store replays one segment stream per host slot and
// interleaves them back into the global order via the per-record global
// index. Each stream gets the same refusals the single stream gets —
// torn tails may only be at a stream's own end, interior damage is
// corruption — and the crash window widens in one understood way: a
// crash mid-cycle can land some streams' records and not others', so
// the records beyond the persisted head may have index gaps. Recovery
// keeps the longest contiguous prefix and treats everything past the
// first gap as the torn tail it is; the anchors see the prefix, so a
// "gap" that would cut into committed history is still refused as a
// rollback before anything is touched.

// recovered is the verified disk state handed from recovery to the Log.
type recovered struct {
	entries []Entry
	// payloads holds each entry's canonical encoding exactly as the WAL
	// replay produced it — the Log adopts these bytes directly, so
	// recovery never re-marshals what it already read and validated.
	payloads [][]byte
	// tree is the Merkle tree rebuilt over the recovered entries; the
	// Log adopts it directly instead of hashing everything twice.
	tree *tree
	// sth is the persisted head when it covered exactly the recovered
	// size; when the disk holds entries beyond the head (a crash between
	// the record fsync and the head replacement) sthStale is true and the
	// caller must sign a fresh head over the full recovered tree.
	sth      SignedTreeHead
	sthStale bool
	// shards is the layout found on disk (or configured for a fresh
	// store): 0 for the single stream, else the per-host stream count.
	shards int
	// tails describes where appends resume: one entry for the single
	// layout, shards entries otherwise.
	tails []streamTail
}

// streamTail is one stream's resumption point.
type streamTail struct {
	// count is the number of records surviving in the stream.
	count uint64
	// tailFirst/tailClean locate the open tail segment and its intact
	// length; hasTail is false for a stream with no segment files.
	tailFirst uint64
	tailClean int64
	hasTail   bool
}

// trimOp is a deferred physical mutation of the store: recovery must not
// modify a store it is about to refuse (it is incident evidence), so
// torn-tail truncations and beyond-gap removals are collected and
// applied only after every anchor accepted the state.
type trimOp struct {
	path     string
	truncate int64 // truncate to this length...
	remove   bool  // ...or remove the file entirely
}

func applyTrims(trims []trimOp) error {
	for _, op := range trims {
		if op.remove {
			if err := os.Remove(op.path); err != nil {
				return fmt.Errorf("translog: removing uncommitted segment: %w", err)
			}
			continue
		}
		if err := os.Truncate(op.path, op.truncate); err != nil {
			return fmt.Errorf("translog: truncating torn tail: %w", err)
		}
	}
	return nil
}

// recoverDir replays the store directory — whichever layout it holds —
// and verifies it against the trust-anchor chain (the built-in sthAnchor
// first, then any extras).
func recoverDir(dir string, cfg StoreConfig, sthAnchor *STHAnchor, extra []TrustAnchor) (*recovered, error) {
	recoverStart := time.Now()
	if cfg.Shards > maxShardSlots {
		return nil, fmt.Errorf("translog: %d shards exceeds the %d-slot segment naming limit", cfg.Shards, maxShardSlots)
	}
	firsts, shardFirsts, err := listAllSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(firsts) > 0 && len(shardFirsts) > 0 {
		return nil, fmt.Errorf("%w: store holds both single-stream and sharded segments", ErrStateCorrupt)
	}
	metaShards, haveMeta, err := loadShardCount(dir)
	if err != nil {
		return nil, err
	}
	var rec *recovered
	var trims []trimOp
	var segments int
	switch {
	case haveMeta:
		// The pinned count from store creation wins over whatever
		// cfg.Shards says today: the layout — and the host→stream
		// routing — is fixed for the store's lifetime.
		if len(firsts) > 0 {
			return nil, fmt.Errorf("%w: single-stream segments in a store pinned to %d shards", ErrStateCorrupt, metaShards)
		}
		rec, trims, segments, err = recoverSharded(dir, metaShards, shardFirsts)
	case len(shardFirsts) > 0 || (len(firsts) == 0 && cfg.Shards > 1):
		nShards := cfg.Shards
		if nShards <= 1 {
			nShards = 2 // layout is sharded regardless of what cfg says now
		}
		for shard := range shardFirsts {
			if shard >= nShards {
				nShards = shard + 1
			}
		}
		rec, trims, segments, err = recoverSharded(dir, nShards, shardFirsts)
	default:
		rec, trims, segments, err = recoverSingle(dir, firsts)
	}
	if err != nil {
		return nil, err
	}

	rec.tree = newTree()
	for _, p := range rec.payloads {
		rec.tree.append(LeafHash(p))
	}
	size := uint64(len(rec.entries))
	state := &RecoveredState{Size: size, Segments: segments, rootAt: rec.tree.rootAt}
	if err := sthAnchor.CheckRecovery(state); err != nil {
		return nil, err
	}
	for _, a := range extra {
		if err := a.CheckRecovery(state); err != nil {
			return nil, err
		}
	}
	// Physical mutations only after every anchor accepted: trim the torn
	// material, and pin a freshly created sharded layout's stream count.
	if err := applyTrims(trims); err != nil {
		return nil, err
	}
	if rec.shards > 0 && !haveMeta {
		if err := saveShardCount(dir, rec.shards, cfg.NoSync); err != nil {
			return nil, err
		}
	}
	sth, have := sthAnchor.Persisted()
	rec.sth = sth
	rec.sthStale = !have || size != sth.Size
	mRecoverEntries.Add(uint64(len(rec.entries)))
	for _, op := range trims {
		if op.remove {
			mRecoverRemovedSegs.Inc()
		} else {
			mRecoverTornTails.Inc()
		}
	}
	mRecoverSeconds.Observe(time.Since(recoverStart))
	mRecoverLast.Mark()
	return rec, nil
}

// recoverSingle replays the legacy single-stream layout.
func recoverSingle(dir string, firsts []uint64) (*recovered, []trimOp, int, error) {
	rec := &recovered{shards: 0}
	var trims []trimOp
	for i, first := range firsts {
		if first != uint64(len(rec.entries)) {
			return nil, nil, 0, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrStateCorrupt, segmentName(first), first, len(rec.entries))
		}
		path := filepath.Join(dir, segmentName(first))
		payloads, clean, err := readSegment(path)
		last := i == len(firsts)-1
		switch {
		case err == nil:
		case errors.Is(err, errTornTail) && last:
			// A crash mid-append leaves a partial final record; cut it
			// (after verification) so appends resume on a frame boundary.
			trims = append(trims, trimOp{path: path, truncate: int64(clean)})
		case errors.Is(err, errTornTail):
			return nil, nil, 0, fmt.Errorf("%w: segment %s ends mid-record but is not the tail",
				ErrStateCorrupt, segmentName(first))
		default:
			return nil, nil, 0, err
		}
		for _, p := range payloads {
			e, err := UnmarshalEntry(p)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("%w: entry %d undecodable: %v", ErrStateCorrupt, len(rec.entries), err)
			}
			rec.entries = append(rec.entries, e)
			rec.payloads = append(rec.payloads, p)
		}
		if last {
			rec.tails = []streamTail{{
				count: uint64(len(rec.entries)), tailFirst: first, tailClean: int64(clean), hasTail: true,
			}}
		}
	}
	if rec.tails == nil {
		rec.tails = []streamTail{{}}
	}
	return rec, trims, len(firsts), nil
}

// shardRecord is one decoded sharded record, located precisely enough to
// trim everything from it onward out of its stream.
type shardRecord struct {
	index   uint64
	entry   Entry
	payload []byte // the entry's canonical encoding as replayed
	shard   int
	// seg is the position of the record's segment in the shard's sorted
	// segment list; off is the record's byte offset within that segment.
	seg int
	off int64
}

// recoverSharded replays every per-host stream and interleaves the
// records back into the global order. nShards is the store's pinned (or
// derived) stream count.
func recoverSharded(dir string, nShards int, shardFirsts map[int][]uint64) (*recovered, []trimOp, int, error) {
	for shard := range shardFirsts {
		if shard >= nShards {
			return nil, nil, 0, fmt.Errorf("%w: segment stream %d in a store with %d shard slots",
				ErrStateCorrupt, shard, nShards)
		}
	}

	var all []shardRecord
	var trims []trimOp
	segments := 0
	// counts/lastSeg/lastClean track each stream's pre-trim shape.
	counts := make([]uint64, nShards)
	segPaths := make([][]string, nShards)
	tailClean := make([]int64, nShards)
	for shard := 0; shard < nShards; shard++ {
		firsts := shardFirsts[shard]
		segments += len(firsts)
		prevIndex := uint64(0)
		haveRecord := false
		for i, first := range firsts {
			if first != counts[shard] {
				return nil, nil, 0, fmt.Errorf("%w: segment %s starts at stream ordinal %d, want %d",
					ErrStateCorrupt, shardSegmentName(shard, first), first, counts[shard])
			}
			path := filepath.Join(dir, shardSegmentName(shard, first))
			segPaths[shard] = append(segPaths[shard], path)
			payloads, clean, err := readSegment(path)
			last := i == len(firsts)-1
			switch {
			case err == nil:
			case errors.Is(err, errTornTail) && last:
				trims = append(trims, trimOp{path: path, truncate: int64(clean)})
			case errors.Is(err, errTornTail):
				return nil, nil, 0, fmt.Errorf("%w: segment %s ends mid-record but is not the stream tail",
					ErrStateCorrupt, shardSegmentName(shard, first))
			default:
				return nil, nil, 0, err
			}
			off := int64(0)
			for _, p := range payloads {
				index, body, err := splitIndexedRecord(p)
				if err != nil {
					return nil, nil, 0, err
				}
				e, uerr := UnmarshalEntry(body)
				if uerr != nil {
					return nil, nil, 0, fmt.Errorf("%w: entry %d undecodable: %v", ErrStateCorrupt, index, uerr)
				}
				if haveRecord && index <= prevIndex {
					return nil, nil, 0, fmt.Errorf("%w: stream %d global index %d not increasing (previous %d)",
						ErrStateCorrupt, shard, index, prevIndex)
				}
				prevIndex, haveRecord = index, true
				all = append(all, shardRecord{index: index, entry: e, payload: body, shard: shard, seg: i, off: off})
				off += recordHeaderLen + int64(len(p))
				counts[shard]++
			}
			if last {
				tailClean[shard] = int64(clean)
			}
		}
	}

	// Interleave: sort by global index, refuse duplicates, and keep the
	// longest contiguous prefix from zero. Records past the first gap can
	// only be the torn remains of the last uncommitted cycle — per-stream
	// indices are increasing, so they form a suffix of each stream — and
	// are trimmed like any other torn tail once the anchors accept. If
	// the gap cut into committed history, the prefix is shorter than the
	// persisted head and the anchors refuse before any trim runs.
	sort.Slice(all, func(i, j int) bool { return all[i].index < all[j].index })
	for i := 1; i < len(all); i++ {
		if all[i].index == all[i-1].index {
			return nil, nil, 0, fmt.Errorf("%w: global index %d appears in stream %d and stream %d",
				ErrStateCorrupt, all[i].index, all[i-1].shard, all[i].shard)
		}
	}
	prefix := len(all)
	for i, r := range all {
		if r.index != uint64(i) {
			prefix = i
			break
		}
	}

	rec := &recovered{shards: nShards}
	for _, r := range all[:prefix] {
		rec.entries = append(rec.entries, r.entry)
		rec.payloads = append(rec.payloads, r.payload)
	}
	if prefix < len(all) {
		// Plan the per-stream cuts: for each stream, everything from its
		// first beyond-prefix record onward goes — truncate that record's
		// segment at its offset, drop the stream's later segments.
		cut := make(map[int]shardRecord)
		dropped := make(map[int]uint64)
		for _, r := range all[prefix:] {
			if c, ok := cut[r.shard]; !ok || r.index < c.index {
				cut[r.shard] = r
			}
			dropped[r.shard]++
		}
		for shard, c := range cut {
			// The cut replaces any torn-tail trim already planned for the
			// stream's last segment: the torn bytes sit after the cut.
			kept := trims[:0]
			for _, op := range trims {
				if len(segPaths[shard]) > 0 && op.path == segPaths[shard][len(segPaths[shard])-1] {
					continue
				}
				kept = append(kept, op)
			}
			trims = kept
			trims = append(trims, trimOp{path: segPaths[shard][c.seg], truncate: c.off})
			for i := c.seg + 1; i < len(segPaths[shard]); i++ {
				trims = append(trims, trimOp{path: segPaths[shard][i], remove: true})
			}
			counts[shard] -= dropped[shard]
			segPaths[shard] = segPaths[shard][:c.seg+1]
			tailClean[shard] = c.off
		}
	}

	rec.tails = make([]streamTail, nShards)
	for shard := 0; shard < nShards; shard++ {
		tail := streamTail{count: counts[shard]}
		if n := len(segPaths[shard]); n > 0 {
			tail.hasTail = true
			_, first, _ := parseShardSegmentName(filepath.Base(segPaths[shard][n-1]))
			tail.tailFirst = first
			tail.tailClean = tailClean[shard]
		}
		rec.tails[shard] = tail
	}
	return rec, trims, segments, nil
}

// OpenDurableLog opens (creating if needed) a write-ahead durable log in
// dir, signed by signer. It replays and verifies the existing disk state
// first — see the package recovery notes — and refuses to open a rolled
// back (ErrStateRollback), rewritten (ErrStateTampered) or damaged
// (ErrStateCorrupt) store; extra trust anchors configured via
// cfg.Anchors add their own refusals (a witness anchor re-raises
// ErrStateRollback from its separate statedir, the sealed-counter
// anchor raises ErrSealedRollback even when every file on disk was
// rewound consistently). Every committed batch is durably persisted
// (records fsynced, latest signed tree head atomically replaced, every
// anchor updated) before AppendBatch returns, so the batched Appender
// amortises the fsync the same way it amortises the tree-head
// signature. With cfg.Shards > 1 the WAL is split into per-host segment
// streams — see StoreConfig.Shards and the ShardedAppender. Close the
// returned log to release the store and anchors.
func OpenDurableLog(signer crypto.Signer, dir string, cfg StoreConfig) (*Log, error) {
	pub, ok := signer.Public().(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("translog: signer key type %T unsupported for durable log", signer.Public())
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("translog: creating store dir: %w", err)
	}
	// Until a Store owns them, refusing or failing the open must still
	// release anchors holding resources (a refused recovery is this
	// feature's main path — it must not leak the sealed anchor's
	// enclave).
	closeAnchors := func() {
		for _, a := range cfg.Anchors {
			if c, ok := a.(io.Closer); ok {
				c.Close()
			}
		}
	}
	sthAnchor := NewSTHAnchor(dir, pub)
	sthAnchor.noSync = cfg.NoSync
	rec, err := recoverDir(dir, cfg, sthAnchor, cfg.Anchors)
	if err != nil {
		closeAnchors()
		return nil, err
	}
	anchors := append([]TrustAnchor{sthAnchor}, cfg.Anchors...)
	store, err := openStoreDir(dir, cfg, anchors, rec)
	if err != nil {
		closeAnchors()
		return nil, err
	}

	l := &Log{
		signer:   signer,
		tree:     rec.tree,
		issuance: make(map[string]uint64),
		revoked:  make(map[string]bool),
	}
	for i, e := range rec.entries {
		l.indexEntry(e, uint64(i))
		// The arena adopts the replayed canonical bytes — the same bytes
		// the recovery pass hashed into the rebuilt tree.
		l.entries.add(rec.payloads[i])
	}
	size := uint64(len(rec.entries))
	sth := rec.sth
	if rec.sthStale {
		// Fresh store, or durable entries past the persisted head: sign
		// a head covering everything recovered.
		root, err := l.tree.rootAt(size)
		if err != nil {
			store.Close()
			return nil, err
		}
		sth, err = l.signHead(size, root)
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	// Re-commit the current head through the whole anchor chain even
	// when it was not stale: a crash inside a previous commit can leave
	// a later anchor (witness head, sealed counter) one batch behind
	// sth.json, and a lagging sealed pin is a rollback window — a
	// snapshot of the lagging state would pass every anchor. After any
	// successful open, every anchor pins exactly the recovered head.
	if err := store.commitHead(sth); err != nil {
		store.Close()
		return nil, err
	}
	l.sth = sth
	l.store = store
	return l, nil
}
