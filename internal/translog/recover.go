package translog

import (
	"crypto"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Recovery: opening a durable log replays every segment, truncates a torn
// tail record, rebuilds the Merkle tree and serial index, and then hands
// the recovered state to the trust-anchor chain (anchor.go) for
// verification. The built-in STHAnchor checks the recomputed root
// against the durably persisted signed tree head — the local anchor of
// the same guarantee the witness provides remotely — and any configured
// extra anchors (witness head, enclave-sealed counter) check their own
// independently rooted memories, so a statedir restored from an old
// snapshot (rollback) or edited in place (tamper) is refused loudly by
// whichever anchor still remembers the newer history.

// recovered is the verified disk state handed from recovery to the Log.
type recovered struct {
	entries []Entry
	// tree is the Merkle tree rebuilt over the recovered entries; the
	// Log adopts it directly instead of hashing everything twice.
	tree *tree
	// sth is the persisted head when it covered exactly the recovered
	// size; when the disk holds entries beyond the head (a crash between
	// the record fsync and the head replacement) sthStale is true and the
	// caller must sign a fresh head over the full recovered tree.
	sth      SignedTreeHead
	sthStale bool
	// tail describes the segment appends resume into.
	tailFirst uint64
	tailClean int64
	hasTail   bool
}

// recoverDir replays the store directory and verifies it against the
// trust-anchor chain (the built-in sthAnchor first, then any extras).
func recoverDir(dir string, sthAnchor *STHAnchor, extra []TrustAnchor) (*recovered, error) {
	firsts, err := listSegments(dir)
	if err != nil {
		return nil, err
	}

	rec := &recovered{}
	// tornPath defers the physical truncation of a torn tail until after
	// every anchor accepted the state: an open that is about to be
	// refused must not modify the store it refuses — it is incident
	// evidence.
	var tornPath string
	var tornAt int64
	for i, first := range firsts {
		if first != uint64(len(rec.entries)) {
			return nil, fmt.Errorf("%w: segment %s starts at %d, want %d",
				ErrStateCorrupt, segmentName(first), first, len(rec.entries))
		}
		path := filepath.Join(dir, segmentName(first))
		payloads, clean, err := readSegment(path)
		last := i == len(firsts)-1
		switch {
		case err == nil:
		case errors.Is(err, errTornTail) && last:
			// A crash mid-append leaves a partial final record; cut it
			// (after verification) so appends resume on a frame boundary.
			tornPath, tornAt = path, int64(clean)
		case errors.Is(err, errTornTail):
			return nil, fmt.Errorf("%w: segment %s ends mid-record but is not the tail",
				ErrStateCorrupt, segmentName(first))
		default:
			return nil, err
		}
		for _, p := range payloads {
			e, err := UnmarshalEntry(p)
			if err != nil {
				return nil, fmt.Errorf("%w: entry %d undecodable: %v", ErrStateCorrupt, len(rec.entries), err)
			}
			rec.entries = append(rec.entries, e)
		}
		if last {
			rec.tailFirst, rec.tailClean, rec.hasTail = first, int64(clean), true
		}
	}

	rec.tree = newTree()
	for _, e := range rec.entries {
		rec.tree.append(LeafHash(e.Marshal()))
	}
	size := uint64(len(rec.entries))
	state := &RecoveredState{Size: size, Segments: len(firsts), rootAt: rec.tree.rootAt}
	if err := sthAnchor.CheckRecovery(state); err != nil {
		return nil, err
	}
	for _, a := range extra {
		if err := a.CheckRecovery(state); err != nil {
			return nil, err
		}
	}
	if tornPath != "" {
		if err := os.Truncate(tornPath, tornAt); err != nil {
			return nil, fmt.Errorf("translog: truncating torn tail: %w", err)
		}
	}
	sth, have := sthAnchor.Persisted()
	rec.sth = sth
	rec.sthStale = !have || size != sth.Size
	return rec, nil
}

// OpenDurableLog opens (creating if needed) a write-ahead durable log in
// dir, signed by signer. It replays and verifies the existing disk state
// first — see the package recovery notes — and refuses to open a rolled
// back (ErrStateRollback), rewritten (ErrStateTampered) or damaged
// (ErrStateCorrupt) store; extra trust anchors configured via
// cfg.Anchors add their own refusals (a witness anchor re-raises
// ErrStateRollback from its separate statedir, the sealed-counter
// anchor raises ErrSealedRollback even when every file on disk was
// rewound consistently). Every committed batch is durably persisted
// (records fsynced, latest signed tree head atomically replaced, every
// anchor updated) before AppendBatch returns, so the batched Appender
// amortises the fsync the same way it amortises the tree-head
// signature. Close the returned log to release the store and anchors.
func OpenDurableLog(signer crypto.Signer, dir string, cfg StoreConfig) (*Log, error) {
	pub, ok := signer.Public().(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("translog: signer key type %T unsupported for durable log", signer.Public())
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("translog: creating store dir: %w", err)
	}
	// Until a Store owns them, refusing or failing the open must still
	// release anchors holding resources (a refused recovery is this
	// feature's main path — it must not leak the sealed anchor's
	// enclave).
	closeAnchors := func() {
		for _, a := range cfg.Anchors {
			if c, ok := a.(io.Closer); ok {
				c.Close()
			}
		}
	}
	sthAnchor := NewSTHAnchor(dir, pub)
	sthAnchor.noSync = cfg.NoSync
	rec, err := recoverDir(dir, sthAnchor, cfg.Anchors)
	if err != nil {
		closeAnchors()
		return nil, err
	}
	anchors := append([]TrustAnchor{sthAnchor}, cfg.Anchors...)
	store, err := openStoreDir(dir, cfg, anchors, uint64(len(rec.entries)), rec.tailFirst, rec.tailClean, rec.hasTail)
	if err != nil {
		closeAnchors()
		return nil, err
	}

	l := &Log{
		signer:   signer,
		tree:     rec.tree,
		bySerial: make(map[string][]uint64),
		revoked:  make(map[string]bool),
	}
	for i, e := range rec.entries {
		if e.Serial != "" {
			l.bySerial[e.Serial] = append(l.bySerial[e.Serial], uint64(i))
			if e.Type == EntryRevoke {
				l.revoked[e.Serial] = true
			}
		}
	}
	l.entries = rec.entries
	size := uint64(len(rec.entries))
	sth := rec.sth
	if rec.sthStale {
		// Fresh store, or durable entries past the persisted head: sign
		// a head covering everything recovered.
		root, err := l.tree.rootAt(size)
		if err != nil {
			store.Close()
			return nil, err
		}
		sth, err = l.signHead(size, root)
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	// Re-commit the current head through the whole anchor chain even
	// when it was not stale: a crash inside a previous commit can leave
	// a later anchor (witness head, sealed counter) one batch behind
	// sth.json, and a lagging sealed pin is a rollback window — a
	// snapshot of the lagging state would pass every anchor. After any
	// successful open, every anchor pins exactly the recovered head.
	if err := store.commitHead(sth); err != nil {
		store.Close()
		return nil, err
	}
	l.sth = sth
	l.store = store
	return l, nil
}
