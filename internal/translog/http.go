package translog

import (
	"bytes"
	"crypto/ecdsa"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Log-server REST paths (CT-inspired, JSON bodies).
const (
	PathSTH         = "/translog/v1/sth"
	PathEntries     = "/translog/v1/entries"
	PathInclusion   = "/translog/v1/inclusion"
	PathConsistency = "/translog/v1/consistency"
	PathLookup      = "/translog/v1/lookup"
	PathAppend      = "/translog/v1/append"
)

// wireEntry is the JSON transport form: the canonical encoding travels
// verbatim so clients re-hash exactly the bytes the log committed.
type wireEntry struct {
	Canonical []byte `json:"canonical"`
}

type wireProof struct {
	Proof []Hash `json:"proof"`
}

type wireBundle struct {
	Index uint64         `json:"index"`
	Entry []byte         `json:"entry"`
	Proof []Hash         `json:"proof"`
	STH   SignedTreeHead `json:"sth"`
}

// MarshalJSON encodes hashes as base64 strings on the wire.
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(base64.StdEncoding.EncodeToString(h[:]))
}

// UnmarshalJSON decodes the base64 wire form.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(raw) != len(h) {
		return fmt.Errorf("translog: bad hash encoding")
	}
	copy(h[:], raw)
	return nil
}

// Handler serves the log over HTTP. The append endpoint is meant for the
// Verification Manager only; deployments bind the server to a loopback or
// management network (the proofs, not the transport, carry the trust).
func Handler(l *Log) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSTH, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, l.STH())
	})
	mux.HandleFunc("GET "+PathEntries, func(w http.ResponseWriter, r *http.Request) {
		start, err1 := queryUint(r, "start")
		count, err2 := queryUint(r, "count")
		if err1 != nil || err2 != nil {
			http.Error(w, "bad start/count", http.StatusBadRequest)
			return
		}
		entries := l.Entries(start, count)
		out := make([]wireEntry, len(entries))
		for i, e := range entries {
			out[i] = wireEntry{Canonical: e.Marshal()}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET "+PathInclusion, func(w http.ResponseWriter, r *http.Request) {
		index, err1 := queryUint(r, "index")
		size, err2 := queryUint(r, "size")
		if err1 != nil || err2 != nil {
			http.Error(w, "bad index/size", http.StatusBadRequest)
			return
		}
		proof, err := l.InclusionProof(index, size)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, wireProof{Proof: proof})
	})
	mux.HandleFunc("GET "+PathConsistency, func(w http.ResponseWriter, r *http.Request) {
		first, err1 := queryUint(r, "first")
		second, err2 := queryUint(r, "second")
		if err1 != nil || err2 != nil {
			http.Error(w, "bad first/second", http.StatusBadRequest)
			return
		}
		proof, err := l.ConsistencyProof(first, second)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, wireProof{Proof: proof})
	})
	mux.HandleFunc("GET "+PathLookup, func(w http.ResponseWriter, r *http.Request) {
		serial := r.URL.Query().Get("serial")
		if serial == "" {
			http.Error(w, "missing serial", http.StatusBadRequest)
			return
		}
		pb, err := l.ProveSerial(serial)
		if err != nil {
			// Revoked and never-logged are distinct verdicts for a
			// relying party; encode the difference in the status code so
			// clients never have to parse prose.
			status := http.StatusNotFound
			if errors.Is(err, ErrLogRevoked) {
				status = http.StatusGone
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, wireBundle{Index: pb.Index, Entry: pb.Entry.Marshal(), Proof: pb.Proof, STH: pb.STH})
	})
	mux.HandleFunc("POST "+PathAppend, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		var in []wireEntry
		if err := json.Unmarshal(body, &in); err != nil {
			http.Error(w, "malformed batch", http.StatusBadRequest)
			return
		}
		batch := make([]Entry, len(in))
		for i, we := range in {
			e, err := UnmarshalEntry(we.Canonical)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			batch[i] = e
		}
		indices, err := l.AppendBatch(batch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"indices": indices, "sth": l.STH()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func queryUint(r *http.Request, key string) (uint64, error) {
	return strconv.ParseUint(r.URL.Query().Get(key), 10, 64)
}

// Client audits a remote log server. When a public key is supplied, every
// fetched tree head is signature-checked before use.
type Client struct {
	base string
	pub  *ecdsa.PublicKey
	http *http.Client
}

// NewClient builds a log client; pub may be nil to skip STH verification
// (trusted-channel setups).
func NewClient(baseURL string, pub *ecdsa.PublicKey) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), pub: pub, http: &http.Client{}}
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("translog client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("translog client: GET %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, out)
}

// STH fetches and (when a key is held) verifies the latest tree head.
func (c *Client) STH() (SignedTreeHead, error) {
	var sth SignedTreeHead
	if err := c.get(PathSTH, &sth); err != nil {
		return sth, err
	}
	if c.pub != nil {
		if err := sth.Verify(c.pub); err != nil {
			return sth, err
		}
	}
	return sth, nil
}

// Entries fetches committed entries in [start, start+count).
func (c *Client) Entries(start, count uint64) ([]Entry, error) {
	var wire []wireEntry
	if err := c.get(fmt.Sprintf("%s?start=%d&count=%d", PathEntries, start, count), &wire); err != nil {
		return nil, err
	}
	out := make([]Entry, len(wire))
	for i, we := range wire {
		e, err := UnmarshalEntry(we.Canonical)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// InclusionProof fetches the audit path for index at size.
func (c *Client) InclusionProof(index, size uint64) ([]Hash, error) {
	var wire wireProof
	if err := c.get(fmt.Sprintf("%s?index=%d&size=%d", PathInclusion, index, size), &wire); err != nil {
		return nil, err
	}
	return wire.Proof, nil
}

// ConsistencyProof fetches the proof that size first is a prefix of size
// second.
func (c *Client) ConsistencyProof(first, second uint64) ([]Hash, error) {
	var wire wireProof
	if err := c.get(fmt.Sprintf("%s?first=%d&second=%d", PathConsistency, first, second), &wire); err != nil {
		return nil, err
	}
	return wire.Proof, nil
}

// ProveSerial fetches and cryptographically verifies a credential proof
// bundle (the remote controller-side counterpart of Log.ProveSerial).
func (c *Client) ProveSerial(serial string) (*ProofBundle, error) {
	resp, err := c.http.Get(c.base + PathLookup + "?serial=" + url.QueryEscape(serial))
	if err != nil {
		return nil, fmt.Errorf("translog client: lookup: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return nil, ErrLogRevoked
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: serial %s", ErrNotLogged, serial)
	default:
		return nil, fmt.Errorf("translog client: lookup: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var wire wireBundle
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, err
	}
	entry, err := UnmarshalEntry(wire.Entry)
	if err != nil {
		return nil, err
	}
	pb := &ProofBundle{Index: wire.Index, Entry: entry, Proof: wire.Proof, STH: wire.STH}
	if c.pub != nil {
		if err := pb.Verify(c.pub); err != nil {
			return nil, err
		}
	}
	return pb, nil
}

// Append submits a batch to the remote log (Verification Manager use).
func (c *Client) Append(batch []Entry) error {
	wire := make([]wireEntry, len(batch))
	for i, e := range batch {
		wire[i] = wireEntry{Canonical: e.Marshal()}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+PathAppend, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("translog client: append: %w", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("translog client: append: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return nil
}
