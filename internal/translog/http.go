package translog

import (
	"bytes"
	"crypto/ecdsa"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Log-server REST paths (CT-inspired, JSON bodies).
const (
	pathSTH         = "/translog/v1/sth"
	pathEntries     = "/translog/v1/entries"
	pathInclusion   = "/translog/v1/inclusion"
	pathConsistency = "/translog/v1/consistency"
	pathLookup      = "/translog/v1/lookup"
	pathAppend      = "/translog/v1/append"
	pathGossip      = "/translog/v1/gossip"
	// pathTile is the tile subtree: GET {level}/{index} for a full tile,
	// GET {level}/{index}.p/{width} for a partial right-edge tile.
	pathTile = "/translog/v1/tile/"
	// pathShard serves per-shard stream slices for the partitioned
	// witness audit; pathCosign/pathCosigned are the co-signing
	// protocol: witnesses POST signatures, relying parties GET the
	// newest quorum artifact.
	pathShard    = "/translog/v1/shard"
	pathCosign   = "/translog/v1/cosign"
	pathCosigned = "/translog/v1/cosigned"
)

// Cache-Control values. Everything a tile-based log serves is either
// immutable (named by content: full tiles, entry ranges and proofs below
// a signed head never change) or the one moving part (the head itself,
// the right edge), which must revalidate. Getting these right is what
// lets a plain HTTP cache in front of the log absorb the fan-out of
// millions of verifying clients.
const (
	cacheImmutable = "public, max-age=31536000, immutable"
	// cachePartialTile: a partial tile's named prefix never changes, but
	// clients soon want a wider one — short-lived, not revalidate-always.
	cachePartialTile = "public, max-age=60"
	cacheNoCache     = "no-cache"
)

// Client-side protocol errors.
var (
	// ErrAppendRejected reports a batch the server refused as invalid
	// (HTTP 400): resubmitting the same batch cannot succeed, drop it.
	ErrAppendRejected = errors.New("translog: append rejected as invalid")
	// ErrLogUnavailable reports a transient server-side failure (HTTP
	// 503, e.g. a latched durable store): retry later.
	ErrLogUnavailable = errors.New("translog: log server unavailable")
)

// wireEntry is the JSON transport form: the canonical encoding travels
// verbatim so clients re-hash exactly the bytes the log committed.
type wireEntry struct {
	Canonical []byte `json:"canonical"`
}

type wireProof struct {
	Proof []Hash `json:"proof"`
}

type wireBundle struct {
	Index uint64         `json:"index"`
	Entry []byte         `json:"entry"`
	Proof []Hash         `json:"proof"`
	STH   SignedTreeHead `json:"sth"`
}

// MarshalJSON encodes hashes as base64 strings on the wire.
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(base64.StdEncoding.EncodeToString(h[:]))
}

// UnmarshalJSON decodes the base64 wire form.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(raw) != len(h) {
		return fmt.Errorf("translog: bad hash encoding")
	}
	copy(h[:], raw)
	return nil
}

// Handler serves the log over HTTP. The append endpoint is meant for the
// Verification Manager only; deployments bind the server to a loopback or
// management network (the proofs, not the transport, carry the trust).
func Handler(l *Log) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathSTH, func(w http.ResponseWriter, r *http.Request) {
		// The head is the one response that must always revalidate: a
		// cache serving yesterday's head would hide yesterday's appends.
		w.Header().Set("Cache-Control", cacheNoCache)
		writeJSON(w, l.STH())
	})
	mux.HandleFunc("GET "+pathEntries, func(w http.ResponseWriter, r *http.Request) {
		start, err1 := queryUint(r, "start")
		count, err2 := queryUint(r, "count")
		if err1 != nil || err2 != nil {
			http.Error(w, "bad start/count", http.StatusBadRequest)
			return
		}
		// A range strictly below the signed head can never change — the
		// log is append-only and the head is its commitment — so the
		// response is immutable and any front cache may keep it forever.
		// Ranges touching the head are clamped responses that grow on the
		// next append; those must revalidate.
		if count > 0 && start+count >= start && start+count <= l.STH().Size {
			w.Header().Set("Cache-Control", cacheImmutable)
		} else {
			w.Header().Set("Cache-Control", cacheNoCache)
		}
		entries := l.Entries(start, count)
		out := make([]wireEntry, len(entries))
		for i, e := range entries {
			out[i] = wireEntry{Canonical: e.Marshal()}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET "+pathTile, func(w http.ResponseWriter, r *http.Request) {
		serveTile(l, w, r)
	})
	mux.HandleFunc("GET "+pathShard, func(w http.ResponseWriter, r *http.Request) {
		shard, err0 := queryUint(r, "shard")
		start, err1 := queryUint(r, "start")
		count, err2 := queryUint(r, "count")
		if err0 != nil || err1 != nil || err2 != nil {
			http.Error(w, "bad shard/start/count", http.StatusBadRequest)
			return
		}
		total, entries, err := l.ShardStream(int(shard), start, count)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// A fully satisfied slice is named by content — the shard stream
		// is a filtered view of an append-only sequence — and may be
		// cached forever; a clamped slice grows on the next append.
		if count > 0 && uint64(len(entries)) == count {
			w.Header().Set("Cache-Control", cacheImmutable)
		} else {
			w.Header().Set("Cache-Control", cacheNoCache)
		}
		writeJSON(w, wireShardStream{Total: total, Entries: entries})
	})
	mux.HandleFunc("GET "+pathInclusion, func(w http.ResponseWriter, r *http.Request) {
		index, err1 := queryUint(r, "index")
		size, err2 := queryUint(r, "size")
		if err1 != nil || err2 != nil {
			http.Error(w, "bad index/size", http.StatusBadRequest)
			return
		}
		proof, err := l.InclusionProof(index, size)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The parameters pin the tree the path is computed in, so the
		// response below a signed head is as immutable as the tiles it
		// could be assembled from.
		if size <= l.STH().Size {
			w.Header().Set("Cache-Control", cacheImmutable)
		}
		writeJSON(w, wireProof{Proof: proof})
	})
	mux.HandleFunc("GET "+pathConsistency, func(w http.ResponseWriter, r *http.Request) {
		first, err1 := queryUint(r, "first")
		second, err2 := queryUint(r, "second")
		if err1 != nil || err2 != nil {
			http.Error(w, "bad first/second", http.StatusBadRequest)
			return
		}
		proof, err := l.ConsistencyProof(first, second)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if second <= l.STH().Size {
			w.Header().Set("Cache-Control", cacheImmutable)
		}
		writeJSON(w, wireProof{Proof: proof})
	})
	mux.HandleFunc("GET "+pathLookup, func(w http.ResponseWriter, r *http.Request) {
		serial := r.URL.Query().Get("serial")
		if serial == "" {
			http.Error(w, "missing serial", http.StatusBadRequest)
			return
		}
		// proof=0 skips the server-side audit path: tile-assembling
		// clients fold it locally from cached tiles, so the sequencer's
		// machine does a map read and an entry copy, nothing more.
		var pb *ProofBundle
		var err error
		if r.URL.Query().Get("proof") == "0" {
			pb, err = l.lookupBundle(serial)
		} else {
			pb, err = l.ProveSerial(serial)
		}
		if err != nil {
			// Revoked and never-logged are distinct verdicts for a
			// relying party; encode the difference in the status code so
			// clients never have to parse prose.
			status := http.StatusNotFound
			if errors.Is(err, ErrLogRevoked) {
				status = http.StatusGone
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, wireBundle{Index: pb.Index, Entry: pb.Entry.Marshal(), Proof: pb.Proof, STH: pb.STH})
	})
	mux.HandleFunc("POST "+pathAppend, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		var in []wireEntry
		if err := json.Unmarshal(body, &in); err != nil {
			http.Error(w, "malformed batch", http.StatusBadRequest)
			return
		}
		batch := make([]Entry, len(in))
		for i, we := range in {
			e, err := unmarshalEntry(we.Canonical)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			batch[i] = e
		}
		indices, err := l.AppendBatch(batch)
		if err != nil {
			// The status code is the producer's retry policy: 400 means
			// the batch itself is unacceptable (drop it), 503 means the
			// store is latched failed or closed (retry against a healed
			// server), 500 is everything else.
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrEntryTooLarge):
				status = http.StatusBadRequest
			case errors.Is(err, ErrStoreFailed):
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, map[string]any{"indices": indices, "sth": l.STH()})
	})
	return mux
}

// serveTile answers GET /translog/v1/tile/{level}/{index} (full tiles)
// and GET /translog/v1/tile/{level}/{index}.p/{width} (partial right-
// edge tiles). The body is the checksummed tile framing, verbatim —
// for a published full tile, the exact bytes of the statedir cache
// file. Full tiles are immutable forever; partial tiles are short-
// lived. Requests past the committed head 404 so caches never memorise
// a right edge that does not exist yet. ({index}.p is not a valid
// ServeMux wildcard segment, so the subtree is parsed by hand.)
func serveTile(l *Log, w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, pathTile)
	parts := strings.Split(rest, "/")
	width := TileWidth
	var levelStr, indexStr string
	switch len(parts) {
	case 2:
		levelStr, indexStr = parts[0], parts[1]
	case 3:
		levelStr = parts[0]
		var ok bool
		indexStr, ok = strings.CutSuffix(parts[1], ".p")
		if !ok {
			http.Error(w, "bad tile path", http.StatusNotFound)
			return
		}
		pw, err := strconv.Atoi(parts[2])
		if err != nil || pw <= 0 || pw >= TileWidth {
			http.Error(w, "bad tile width", http.StatusNotFound)
			return
		}
		width = pw
	default:
		http.Error(w, "bad tile path", http.StatusNotFound)
		return
	}
	level, err1 := strconv.ParseUint(levelStr, 10, 64)
	index, err2 := strconv.ParseUint(indexStr, 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad tile coordinates", http.StatusNotFound)
		return
	}
	t, err := l.Tile(level, index, width)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	mTileHTTP.Inc()
	if width == TileWidth {
		w.Header().Set("Cache-Control", cacheImmutable)
	} else {
		w.Header().Set("Cache-Control", cachePartialTile)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(encodeTile(t))
}

// wireGossip carries one witness's view on the gossip wire: its name (for
// evidence attribution in logs), last-accepted head and — in partitioned
// mode — the audit marks over its assigned shard streams. A witness
// carrying no mark for a shard is making no claim about it; absence is
// ignorance, never testimony (see Witness.mergeShardMarks).
type wireGossip struct {
	Name  string          `json:"name,omitempty"`
	Seen  bool            `json:"seen"`
	Head  SignedTreeHead  `json:"head"`
	Marks []wireShardMark `json:"marks,omitempty"`
}

// wireShardMark is one audited shard cursor on the gossip wire.
type wireShardMark struct {
	Shard int    `json:"shard"`
	Count uint64 `json:"count"`
	Mark  Hash   `json:"mark"`
}

// wireShardStream is the shard endpoint's response: the stream's total
// length plus the requested slice.
type wireShardStream struct {
	Total   uint64         `json:"total"`
	Entries []IndexedEntry `json:"entries"`
}

// wireConflict decodes the HTTP 409 body: a serialised ConflictError
// (ConflictError.MarshalJSON produces the matching encoding). Kind
// travels as a label so the evidence survives the round-trip as the same
// errors.Is-able verdict.
type wireConflict struct {
	Kind   string         `json:"kind"` // "rollback" | "split-view"
	Detail string         `json:"detail"`
	Have   SignedTreeHead `json:"have"`
	Got    SignedTreeHead `json:"got"`
}

func (wc wireConflict) toError() *ConflictError {
	kind := error(ErrSplitView)
	if wc.Kind == "rollback" {
		kind = ErrRollback
	}
	return &ConflictError{Kind: kind, Detail: wc.Detail, Have: wc.Have, Got: wc.Got}
}

// wireCosign is the cosign endpoint's request: the served head plus one
// witness co-signature over it.
type wireCosign struct {
	STH SignedTreeHead   `json:"sth"`
	Sig WitnessSignature `json:"sig"`
}

// wireCosignAck acknowledges an accepted co-signature: how many distinct
// witnesses have signed at that size, against the quorum required.
type wireCosignAck struct {
	Count  int `json:"count"`
	Quorum int `json:"quorum"`
}

// wireCosignReject is the 400 body for a co-signature the collector
// refused. Code travels so the client surfaces the same errors.Is-able
// verdict the collector raised instead of a flattened status string.
type wireCosignReject struct {
	Code  string `json:"code"` // "bad-sth" | "cosign-invalid" | "unknown-witness" | "duplicate-witness"
	Error string `json:"error"`
}

func (rej wireCosignReject) toError() error {
	var sentinel error
	switch rej.Code {
	case "bad-sth":
		sentinel = ErrBadSTH
	case "unknown-witness":
		sentinel = ErrUnknownWitness
	case "duplicate-witness":
		sentinel = ErrDuplicateWitness
	default:
		sentinel = ErrCosignInvalid
	}
	return fmt.Errorf("%w: %s", sentinel, rej.Error)
}

// cosignRejectCode labels a collector rejection for the wire;
// ok reports whether the error is a 400-class rejection at all.
func cosignRejectCode(err error) (string, bool) {
	switch {
	case errors.Is(err, ErrBadSTH):
		return "bad-sth", true
	case errors.Is(err, ErrUnknownWitness):
		return "unknown-witness", true
	case errors.Is(err, ErrDuplicateWitness):
		return "duplicate-witness", true
	case errors.Is(err, ErrCosignInvalid):
		return "cosign-invalid", true
	}
	return "", false
}

// equivocationKind discriminates an EquivocationError 409 body from a
// ConflictError one; both carry a "kind" field, the conflict kinds being
// "rollback" and "split-view".
const equivocationKind = "witness-equivocation"

// wireEquivocation is the 409 body for witness equivocation: the two
// co-signatures that convict by signature alone.
type wireEquivocation struct {
	Kind    string           `json:"kind"` // equivocationKind
	Witness string           `json:"witness"`
	A       WitnessSignature `json:"a"`
	B       WitnessSignature `json:"b"`
}

// decodeCosignConflict maps a cosign 409 body to the evidence error it
// carries: an *EquivocationError (the caller verifies it against its
// pinned roster — the reporting server is not trusted) or a
// *ConflictError.
func decodeCosignConflict(data []byte) error {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("translog client: cosign conflict undecodable: %w", err)
	}
	if probe.Kind == equivocationKind {
		var we wireEquivocation
		if err := json.Unmarshal(data, &we); err != nil {
			return fmt.Errorf("translog client: cosign conflict undecodable: %w", err)
		}
		return &EquivocationError{Witness: we.Witness, A: we.A, B: we.B}
	}
	var wc wireConflict
	if err := json.Unmarshal(data, &wc); err != nil {
		return fmt.Errorf("translog client: cosign conflict undecodable: %w", err)
	}
	return wc.toError()
}

// GossipHandler serves a witness's side of head gossip. GET returns the
// witness's last-accepted head; POST receives a peer's head, merges it,
// and answers with our own — or with 409 plus the two-signed-head
// evidence when the merge convicts the log. Junk input (malformed JSON,
// heads with invalid signatures) is rejected with 400 and never touches
// witness state.
func GossipHandler(p *GossipPool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathGossip, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.localView())
	})
	mux.HandleFunc("POST "+pathGossip, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		var in wireGossip
		if err := json.Unmarshal(body, &in); err != nil {
			http.Error(w, "malformed gossip", http.StatusBadRequest)
			return
		}
		if !in.Seen {
			// The peer has nothing to offer; just answer with our view.
			writeJSON(w, p.localView())
			return
		}
		out, err := p.receiveView(in)
		var ce *ConflictError
		switch {
		case err == nil:
			writeJSON(w, out)
		case errors.As(err, &ce):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(ce)
		case errors.Is(err, ErrBadSTH):
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// CosignHandler serves the co-signing side of the quorum protocol.
// POST /translog/v1/cosign receives one witness co-signature; forged,
// replayed, duplicate or out-of-roster signatures are refused with 400
// and a machine-readable code, while evidence-grade failures — the
// collector observing two signed heads at one size, or the submitting
// witness equivocating — come back as 409 with the self-verifying
// evidence attached. GET /translog/v1/cosigned serves the newest quorum
// co-signed head, or 404 while quorum is outstanding.
func CosignHandler(col *CosignCollector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathCosign, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		var in wireCosign
		if err := json.Unmarshal(body, &in); err != nil {
			http.Error(w, "malformed cosign", http.StatusBadRequest)
			return
		}
		count, err := col.Submit(in.STH, in.Sig)
		var ee *EquivocationError
		var ce *ConflictError
		switch {
		case err == nil:
			writeJSON(w, wireCosignAck{Count: count, Quorum: col.Quorum()})
		case errors.As(err, &ee):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(wireEquivocation{Kind: equivocationKind, Witness: ee.Witness, A: ee.A, B: ee.B})
		case errors.As(err, &ce):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(ce)
		default:
			if code, ok := cosignRejectCode(err); ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(wireCosignReject{Code: code, Error: err.Error()})
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET "+pathCosigned, func(w http.ResponseWriter, r *http.Request) {
		ch, err := col.Cosigned()
		switch {
		case err == nil:
			w.Header().Set("Cache-Control", cacheNoCache)
			writeJSON(w, ch)
		case errors.Is(err, ErrQuorumNotReached):
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func queryUint(r *http.Request, key string) (uint64, error) {
	return strconv.ParseUint(r.URL.Query().Get(key), 10, 64)
}

// Client audits a remote log server. When a public key is supplied, every
// fetched tree head is signature-checked before use.
type Client struct {
	base string
	pub  *ecdsa.PublicKey
	http *http.Client
}

// defaultClientTimeout bounds every log-server and gossip HTTP call. A
// witness or monitor must never hang forever on a stalled server — a log
// that stops answering is a finding, not a reason to stop auditing.
const defaultClientTimeout = 10 * time.Second

// clientConfig tunes the log client.
type clientConfig struct {
	// Timeout bounds each HTTP request end to end (default
	// defaultClientTimeout; negative disables the bound entirely).
	Timeout time.Duration
	// Transport overrides the HTTP transport (nil: net/http default).
	Transport http.RoundTripper
}

// NewClient builds a log client with the default request timeout; pub may
// be nil to skip STH verification (trusted-channel setups).
func NewClient(baseURL string, pub *ecdsa.PublicKey) *Client {
	return newClientWithConfig(baseURL, pub, clientConfig{})
}

// sharedTransport is the pooled HTTP transport every log client in the
// process shares by default. Monitors, witnesses and tile assemblers
// construct clients freely (one per peer, per pool, per checker); with
// per-client transports each would keep its own idle-connection pool
// and tile fan-out would pay a TCP (and TLS) handshake per cold
// request. One shared pool means the second client to talk to a server
// reuses the first one's connection — pinned by
// TestClientsShareTransportConnections.
var sharedTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 16
	return t
}()

// newClientWithConfig builds a log client with explicit tuning.
func newClientWithConfig(baseURL string, pub *ecdsa.PublicKey, cfg clientConfig) *Client {
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = defaultClientTimeout
	}
	if timeout < 0 {
		timeout = 0
	}
	transport := cfg.Transport
	if transport == nil {
		transport = sharedTransport
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		pub:  pub,
		http: &http.Client{Timeout: timeout, Transport: transport},
	}
}

// BaseURL returns the server URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("translog client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("translog client: GET %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, out)
}

// STH fetches and (when a key is held) verifies the latest tree head.
func (c *Client) STH() (SignedTreeHead, error) {
	var sth SignedTreeHead
	if err := c.get(pathSTH, &sth); err != nil {
		return sth, err
	}
	if c.pub != nil {
		if err := sth.Verify(c.pub); err != nil {
			return sth, err
		}
	}
	return sth, nil
}

// Entries fetches committed entries in [start, start+count).
func (c *Client) Entries(start, count uint64) ([]Entry, error) {
	var wire []wireEntry
	if err := c.get(fmt.Sprintf("%s?start=%d&count=%d", pathEntries, start, count), &wire); err != nil {
		return nil, err
	}
	out := make([]Entry, len(wire))
	for i, we := range wire {
		e, err := unmarshalEntry(we.Canonical)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// InclusionProof fetches the audit path for index at size.
func (c *Client) InclusionProof(index, size uint64) ([]Hash, error) {
	var wire wireProof
	if err := c.get(fmt.Sprintf("%s?index=%d&size=%d", pathInclusion, index, size), &wire); err != nil {
		return nil, err
	}
	return wire.Proof, nil
}

// ConsistencyProof fetches the proof that size first is a prefix of size
// second.
func (c *Client) ConsistencyProof(first, second uint64) ([]Hash, error) {
	var wire wireProof
	if err := c.get(fmt.Sprintf("%s?first=%d&second=%d", pathConsistency, first, second), &wire); err != nil {
		return nil, err
	}
	return wire.Proof, nil
}

// Tile fetches the tile at (level, index) with the given width
// (TileWidth for a full tile). Tiles carry no signatures — they are
// only believed through the proofs they assemble into — so no key check
// happens here; the framing checksum and coordinate echo catch
// transport damage.
func (c *Client) Tile(level, index uint64, width int) (*Tile, error) {
	path := fmt.Sprintf("%s%d/%d", pathTile, level, index)
	if width != TileWidth {
		path = fmt.Sprintf("%s.p/%d", path, width)
	}
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, fmt.Errorf("translog client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("translog client: GET %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	t, terr := decodeTile(data)
	if terr != nil {
		return nil, fmt.Errorf("translog client: GET %s: %w", path, terr)
	}
	if t.Level != level || t.Index != index || t.Width() != width {
		return nil, fmt.Errorf("translog client: GET %s: server returned tile (%d, %d) width %d", path, t.Level, t.Index, t.Width())
	}
	return t, nil
}

// ProveSerial fetches and cryptographically verifies a credential proof
// bundle (the remote controller-side counterpart of Log.ProveSerial).
func (c *Client) ProveSerial(serial string) (*ProofBundle, error) {
	pb, err := c.fetchLookup(serial, true)
	if err != nil {
		return nil, err
	}
	if c.pub != nil {
		if err := pb.Verify(c.pub); err != nil {
			return nil, err
		}
	}
	return pb, nil
}

// lookupBundle resolves a serial to its proof bundle minus the audit
// path (?proof=0): the tile assembler folds the path locally. Only the
// head signature can be checked here — inclusion is exactly what the
// assembled proof will establish.
func (c *Client) lookupBundle(serial string) (*ProofBundle, error) {
	pb, err := c.fetchLookup(serial, false)
	if err != nil {
		return nil, err
	}
	if c.pub != nil {
		if err := pb.STH.Verify(c.pub); err != nil {
			return nil, err
		}
	}
	return pb, nil
}

// fetchLookup fetches the lookup endpoint, with or without the
// server-computed audit path.
func (c *Client) fetchLookup(serial string, withProof bool) (*ProofBundle, error) {
	path := c.base + pathLookup + "?serial=" + url.QueryEscape(serial)
	if !withProof {
		path += "&proof=0"
	}
	resp, err := c.http.Get(path)
	if err != nil {
		return nil, fmt.Errorf("translog client: lookup: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return nil, ErrLogRevoked
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: serial %s", ErrNotLogged, serial)
	default:
		return nil, fmt.Errorf("translog client: lookup: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var wire wireBundle
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, err
	}
	entry, err := unmarshalEntry(wire.Entry)
	if err != nil {
		return nil, err
	}
	return &ProofBundle{Index: wire.Index, Entry: entry, Proof: wire.Proof, STH: wire.STH}, nil
}

// Append submits a batch to the remote log (Verification Manager use).
func (c *Client) Append(batch []Entry) error {
	_, err := c.AppendSTH(batch)
	return err
}

// AppendSTH submits a batch and returns the server's fresh signed tree
// head covering it — the head a producer publishes to witnesses, so the
// witness set anchors on what the *server* signed, not on a head from a
// different log under the same key.
func (c *Client) AppendSTH(batch []Entry) (SignedTreeHead, error) {
	wire := make([]wireEntry, len(batch))
	for i, e := range batch {
		wire[i] = wireEntry{Canonical: e.Marshal()}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return SignedTreeHead{}, err
	}
	resp, err := c.http.Post(c.base+pathAppend, "application/json", bytes.NewReader(body))
	if err != nil {
		return SignedTreeHead{}, fmt.Errorf("translog client: append: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// A peer that dies mid-body must surface as the transport error
		// it is, not as a truncated (or empty) server message.
		return SignedTreeHead{}, fmt.Errorf("translog client: append: reading response (status %d): %w", resp.StatusCode, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out struct {
			STH SignedTreeHead `json:"sth"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			return SignedTreeHead{}, fmt.Errorf("translog client: append response: %w", err)
		}
		if c.pub != nil {
			if err := out.STH.Verify(c.pub); err != nil {
				return SignedTreeHead{}, err
			}
		}
		return out.STH, nil
	case http.StatusBadRequest:
		// The server classified the batch itself as unacceptable: the
		// producer must drop it, not retry it into the same wall.
		return SignedTreeHead{}, fmt.Errorf("%w: %s", ErrAppendRejected, strings.TrimSpace(string(data)))
	case http.StatusServiceUnavailable:
		return SignedTreeHead{}, fmt.Errorf("%w: %s", ErrLogUnavailable, strings.TrimSpace(string(data)))
	default:
		return SignedTreeHead{}, fmt.Errorf("translog client: append: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// ExchangeGossip posts our last-accepted head (seen=false when we hold
// none) to a peer witness's gossip endpoint and returns the peer's view.
// A 409 response is the peer convicting the log on our evidence (or its
// own): it comes back as the *ConflictError it is, both signed heads
// attached.
func (c *Client) ExchangeGossip(name string, head SignedTreeHead, seen bool) (SignedTreeHead, bool, error) {
	out, err := c.exchangeView(wireGossip{Name: name, Seen: seen, Head: head})
	if err != nil {
		return SignedTreeHead{}, false, err
	}
	return out.Head, out.Seen, nil
}

// exchangeView is the full gossip exchange: the head plus, between
// partitioned witnesses, the shard audit marks. ExchangeGossip is the
// head-only wrapper kept for unpartitioned pools.
func (c *Client) exchangeView(v wireGossip) (wireGossip, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return wireGossip{}, err
	}
	resp, err := c.http.Post(c.base+pathGossip, "application/json", bytes.NewReader(body))
	if err != nil {
		return wireGossip{}, fmt.Errorf("translog client: gossip: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return wireGossip{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out wireGossip
		if err := json.Unmarshal(data, &out); err != nil {
			return wireGossip{}, fmt.Errorf("translog client: gossip: %w", err)
		}
		if out.Seen && c.pub != nil {
			if err := out.Head.Verify(c.pub); err != nil {
				return wireGossip{}, err
			}
		}
		return out, nil
	case http.StatusConflict:
		var wc wireConflict
		if err := json.Unmarshal(data, &wc); err != nil {
			return wireGossip{}, fmt.Errorf("translog client: gossip conflict undecodable: %w", err)
		}
		ce := wc.toError()
		if c.pub != nil {
			// A conviction is only as good as its evidence: both heads
			// must carry valid log signatures, or a malicious peer could
			// fabricate 409s and turn the alarm channel into a kill
			// switch for honest witnesses.
			if err := ce.Verify(c.pub); err != nil {
				return wireGossip{}, fmt.Errorf("translog client: peer sent conviction with unverifiable evidence: %w", err)
			}
		}
		return wireGossip{}, ce
	default:
		return wireGossip{}, fmt.Errorf("translog client: gossip: status %d: %s",
			resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// ShardStream fetches shard s's stream slice [start, start+count) and
// the stream's total length — the remote half of ShardAuditSource. The
// elements carry no signatures; each is believed only through the
// inclusion proof the auditing witness folds it into.
func (c *Client) ShardStream(shard int, start, count uint64) (uint64, []IndexedEntry, error) {
	var out wireShardStream
	if err := c.get(fmt.Sprintf("%s?shard=%d&start=%d&count=%d", pathShard, shard, start, count), &out); err != nil {
		return 0, nil, err
	}
	return out.Total, out.Entries, nil
}

// SubmitCosign posts one witness co-signature over a served head to the
// log server's collector and returns the number of distinct signatures
// the collector now holds at that size. Rejections come back as the
// errors.Is-able verdicts the collector raised: ErrCosignInvalid,
// ErrUnknownWitness, ErrDuplicateWitness, a *ConflictError (the server
// observed two signed heads at one size), or a self-verifying
// *EquivocationError naming this witness.
func (c *Client) SubmitCosign(sth SignedTreeHead, ws WitnessSignature) (int, error) {
	body, err := json.Marshal(wireCosign{STH: sth, Sig: ws})
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Post(c.base+pathCosign, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("translog client: cosign: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var ack wireCosignAck
		if err := json.Unmarshal(data, &ack); err != nil {
			return 0, fmt.Errorf("translog client: cosign ack: %w", err)
		}
		return ack.Count, nil
	case http.StatusConflict:
		return 0, decodeCosignConflict(data)
	case http.StatusBadRequest:
		var rej wireCosignReject
		if err := json.Unmarshal(data, &rej); err != nil {
			return 0, fmt.Errorf("translog client: cosign rejected: %s", strings.TrimSpace(string(data)))
		}
		return 0, rej.toError()
	default:
		return 0, fmt.Errorf("translog client: cosign: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// Cosigned fetches the newest quorum co-signed head (a CosignSource). A
// collector that has not yet reached quorum answers 404, surfaced as the
// ErrQuorumNotReached it is. The head's log signature is checked when a
// key is held; the witness signature set is the caller's to verify
// against its pinned roster — the server is exactly the party a quorum
// artifact must not be taken on faith from.
func (c *Client) Cosigned() (*CosignedHead, error) {
	resp, err := c.http.Get(c.base + pathCosigned)
	if err != nil {
		return nil, fmt.Errorf("translog client: cosigned: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var ch CosignedHead
		if err := json.Unmarshal(data, &ch); err != nil {
			return nil, fmt.Errorf("translog client: cosigned: %w", err)
		}
		if c.pub != nil {
			if err := ch.STH.Verify(c.pub); err != nil {
				return nil, err
			}
		}
		return &ch, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrQuorumNotReached, strings.TrimSpace(string(data)))
	default:
		return nil, fmt.Errorf("translog client: cosigned: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// GossipHead fetches a peer witness's last-accepted head without offering
// ours.
func (c *Client) GossipHead() (SignedTreeHead, bool, error) {
	var out wireGossip
	if err := c.get(pathGossip, &out); err != nil {
		return SignedTreeHead{}, false, err
	}
	if out.Seen && c.pub != nil {
		if err := out.Head.Verify(c.pub); err != nil {
			return SignedTreeHead{}, false, err
		}
	}
	return out.Head, out.Seen, nil
}
