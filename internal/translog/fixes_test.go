package translog

// Regression tests for the translog client/appender fix round: each test
// pins one bug that shipped — a client that could hang forever, a Flush
// that could race Close and lie, an append endpoint that hid "drop this"
// behind 500, and a witness that let Last() age backwards.

import (
	"bytes"
	"crypto"
	"crypto/ecdsa"
	"crypto/rand"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func jsonMarshalWireBatch(batch []Entry) ([]byte, error) {
	wire := make([]wireEntry, len(batch))
	for i, e := range batch {
		wire[i] = wireEntry{Canonical: e.Marshal()}
	}
	return json.Marshal(wire)
}

// TestClientTimeoutAgainstHangingServer: a stalled log server must not
// hang the witness/monitor forever — the default client times out, and
// clientConfig can tighten the bound.
func TestClientTimeoutAgainstHangingServer(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test ends
	}))
	t.Cleanup(func() {
		once.Do(func() { close(release) })
		srv.Close()
	})

	c := newClientWithConfig(srv.URL, nil, clientConfig{Timeout: 150 * time.Millisecond})
	start := time.Now()
	_, err := c.STH()
	if err == nil {
		t.Fatal("STH against a hanging server returned")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client hung %v despite 150ms timeout", elapsed)
	}
	if _, _, err := c.GossipHead(); err == nil {
		t.Fatal("gossip against a hanging server returned")
	}
	if _, _, err := c.ExchangeGossip("w", SignedTreeHead{}, false); err == nil {
		t.Fatal("gossip exchange against a hanging server returned")
	}

	// The convenience constructor carries the safety default; zero config
	// means the default, and a negative timeout opts out explicitly.
	if got := NewClient(srv.URL, nil).http.Timeout; got != defaultClientTimeout {
		t.Fatalf("NewClient timeout %v, want %v", got, defaultClientTimeout)
	}
	if got := newClientWithConfig(srv.URL, nil, clientConfig{}).http.Timeout; got != defaultClientTimeout {
		t.Fatalf("zero-config timeout %v, want %v", got, defaultClientTimeout)
	}
	if got := newClientWithConfig(srv.URL, nil, clientConfig{Timeout: -1}).http.Timeout; got != 0 {
		t.Fatalf("negative timeout gave %v, want unbounded", got)
	}
}

// slowSigner widens the commit window so Flush/Close interleavings that
// would be nanosecond races become reliably observable.
type slowSigner struct {
	inner crypto.Signer
	delay time.Duration
}

func (s slowSigner) Public() crypto.PublicKey { return s.inner.Public() }

func (s slowSigner) Sign(r io.Reader, digest []byte, opts crypto.SignerOpts) ([]byte, error) {
	time.Sleep(s.delay)
	return s.inner.Sign(r, digest, opts)
}

// raceAppender builds an appender frozen in the exact state the
// Flush/Close race produces: an entry slipped into the buffer between
// Close's drain and `closed` being set, so the loop goroutine's *final*
// commit — which runs after Close has already returned — still has to
// commit it. No loop goroutine is started: the test plays its role, so
// the interleaving is deterministic instead of a scheduler lottery.
func raceAppender(l *Log) *Appender {
	a := &Appender{
		log:      l,
		maxBatch: 4,
		interval: time.Hour,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	a.idle = sync.NewCond(&a.mu)
	a.pending = []Entry{{Type: EntryAttestOK, Actor: "late", Detail: "OK"}}
	a.closed = true
	close(a.done)
	return a
}

// TestFlushWaitsOutFinalCommit pins the Flush/Close race: with the
// appender closed but the final batch not yet committed, Flush must wait
// the commit out — not report completion while the entry is in flight.
func TestFlushWaitsOutFinalCommit(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	a := raceAppender(l)
	flushed := make(chan error, 1)
	go func() { flushed <- a.Flush() }()
	select {
	case <-flushed:
		// Flush returned with the final batch still uncommitted.
		t.Fatalf("Flush returned before the final batch landed (%d entries committed)", l.Size())
	case <-time.After(100 * time.Millisecond):
		// Still waiting: correct.
	}
	a.commit() // the loop goroutine's final commit
	if err := <-flushed; err != nil {
		t.Fatalf("flush: %v", err)
	}
	if l.Size() != 1 {
		t.Fatalf("final batch not committed: size %d", l.Size())
	}
}

// TestFlushReportsFinalCommitError: same interleaving, but the final
// commit fails — Flush must surface that error, not return nil.
func TestFlushReportsFinalCommitError(t *testing.T) {
	key := testSigner(t)
	var left atomic.Int64
	left.Store(1) // genesis head only; the final batch's signature fails
	l, err := NewLog(failAfterSigner{inner: key, left: &left})
	if err != nil {
		t.Fatal(err)
	}
	a := raceAppender(l)
	flushed := make(chan error, 1)
	go func() { flushed <- a.Flush() }()
	time.Sleep(20 * time.Millisecond) // let Flush reach its wait
	a.commit()
	if err := <-flushed; err == nil {
		t.Fatal("Flush swallowed the final batch's commit error")
	}
}

// TestFlushCloseStress exercises producer/Flush/Close interleavings under
// -race: every entry accepted before Close must be committed once the
// post-close Flush returns.
func TestFlushCloseStress(t *testing.T) {
	key := testSigner(t)
	for iter := 0; iter < 25; iter++ {
		l, err := NewLog(slowSigner{inner: key, delay: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		a := NewAppender(l, AppenderConfig{MaxBatch: 4, FlushInterval: time.Millisecond})
		var appended atomic.Uint64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Bounded producer: an unbounded one would keep the buffer
			// permanently non-empty and starve Close's drain.
			for i := 0; i < 200; i++ {
				if err := a.Append(testEntry(i)); err != nil {
					if !errors.Is(err, ErrClosedLog) {
						t.Errorf("append: %v", err)
					}
					return
				}
				appended.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(iter%7) * 100 * time.Microsecond)
			if err := a.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()

		// Entries appended before this Flush call must be committed when
		// it returns — whether the appender is open, closing, or closed.
		time.Sleep(time.Duration(iter%5) * 150 * time.Microsecond)
		n := appended.Load()
		if err := a.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if got := l.Size(); got < n {
			t.Fatalf("iter %d: Flush returned with %d of %d pre-Flush entries committed", iter, got, n)
		}
		wg.Wait()
		if err := a.Flush(); err != nil {
			t.Fatalf("post-close flush: %v", err)
		}
		if got, want := l.Size(), appended.Load(); got != want {
			t.Fatalf("iter %d: %d committed, %d successfully appended", iter, got, want)
		}
	}
}

// failAfterSigner lets the first n signatures through, then fails — so a
// final racing batch fails its commit and Flush must report it.
type failAfterSigner struct {
	inner crypto.Signer
	left  *atomic.Int64
}

func (s failAfterSigner) Public() crypto.PublicKey { return s.inner.Public() }

func (s failAfterSigner) Sign(r io.Reader, digest []byte, opts crypto.SignerOpts) ([]byte, error) {
	if s.left.Add(-1) < 0 {
		return nil, errors.New("signer gone")
	}
	return s.inner.Sign(r, digest, opts)
}

// TestFlushReportsFinalBatchError: the error of a batch committed during
// Close's drain is visible to a concurrent (or later) Flush, not dropped.
func TestFlushReportsFinalBatchError(t *testing.T) {
	key := testSigner(t)
	var left atomic.Int64
	left.Store(1) // genesis head only; every batch commit after it fails
	l, err := NewLog(failAfterSigner{inner: key, left: &left})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(l, AppenderConfig{MaxBatch: 256, FlushInterval: time.Hour})
	if err := a.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err == nil {
		t.Fatal("Close dropped the final batch's commit error")
	}
	if err := a.Flush(); err == nil {
		t.Fatal("Flush after failed final batch returned nil")
	}
}

// TestAppendEndpointStatusCodes: the producer-facing status-code
// contract. 200 commit, 400 for batches that can never succeed (drop),
// 503 for a latched/closed store (retry later), and the client maps each
// onto its sentinel error.
func TestAppendEndpointStatusCodes(t *testing.T) {
	key := testSigner(t)
	l, err := OpenDurableLog(key, t.TempDir(), StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()
	c := NewClient(srv.URL, &key.PublicKey)

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(srv.URL+pathAppend, "application/json", bytesReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	wireOf := func(e Entry) []byte {
		data, err := jsonMarshalWireBatch([]Entry{e})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"valid entry commits", wireOf(testEntry(1)), http.StatusOK},
		{"malformed JSON", []byte("{"), http.StatusBadRequest},
		{"undecodable canonical entry", []byte(`[{"canonical":"AAECAw=="}]`), http.StatusBadRequest},
		{"oversized record", wireOf(Entry{Type: EntryAttestFail, Actor: "big", Detail: string(make([]byte, maxRecordBytes+1))}), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}

	// Client-side classification: invalid → ErrAppendRejected (drop it).
	err = c.Append([]Entry{{Type: EntryAttestFail, Actor: "big", Detail: string(make([]byte, maxRecordBytes+1))}})
	if !errors.Is(err, ErrAppendRejected) {
		t.Fatalf("oversized append error %v, want ErrAppendRejected", err)
	}
	// The refused batch did not poison the store: appends still work.
	if err := c.Append([]Entry{testEntry(2)}); err != nil {
		t.Fatalf("append after refused batch: %v", err)
	}

	// A latched/closed store is transient from the producer's view:
	// 503 → ErrLogUnavailable (retry against a healed server).
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := post(wireOf(testEntry(3))); got != http.StatusServiceUnavailable {
		t.Fatalf("latched store: status %d, want 503", got)
	}
	err = c.Append([]Entry{testEntry(3)})
	if !errors.Is(err, ErrLogUnavailable) {
		t.Fatalf("latched-store append error %v, want ErrLogUnavailable", err)
	}
}

// TestWitnessRejectsTimestampRegression: a same-size, same-root head with
// an older timestamp must not move Last() backwards in time; a newer one
// must refresh it.
func TestWitnessRejectsTimestampRegression(t *testing.T) {
	key := testSigner(t)
	l, err := NewLog(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	fetch := func(a, b uint64) ([]Hash, error) { return l.ConsistencyProof(a, b) }
	w := NewWitness(&key.PublicKey)
	if err := w.Advance(l.STH(), fetch); err != nil {
		t.Fatal(err)
	}
	cur, _ := w.Last()

	resign := func(ts int64) SignedTreeHead {
		t.Helper()
		sth := SignedTreeHead{Size: cur.Size, RootHash: cur.RootHash, Timestamp: ts}
		digest := sth.signingDigest()
		sig, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
		if err != nil {
			t.Fatal(err)
		}
		sth.Signature = sig
		return sth
	}

	// Regressed timestamp: benign (a stale re-served head), but Last()
	// keeps the newest — both on the served path and the gossip path.
	older := resign(cur.Timestamp - 60_000)
	if err := w.Advance(older, fetch); err != nil {
		t.Fatalf("stale head treated as an attack: %v", err)
	}
	if got, _ := w.Last(); got.Timestamp != cur.Timestamp {
		t.Fatalf("Advance moved Last() back in time: %d → %d", cur.Timestamp, got.Timestamp)
	}
	if err := w.Merge(older, fetch); err != nil {
		t.Fatalf("stale peer head treated as an attack: %v", err)
	}
	if got, _ := w.Last(); got.Timestamp != cur.Timestamp {
		t.Fatalf("Merge moved Last() back in time: %d → %d", cur.Timestamp, got.Timestamp)
	}

	// Newer timestamp at the same size/root: freshness advances.
	newer := resign(cur.Timestamp + 60_000)
	if err := w.Advance(newer, fetch); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.Last(); got.Timestamp != newer.Timestamp {
		t.Fatalf("fresh head not adopted: %d, want %d", got.Timestamp, newer.Timestamp)
	}
}
