// Enclave-sealed monotonic head: the trust anchor that survives total
// amnesia. The newest committed head is sealed (SealToMRENCLAVE) into a
// blob stamped with a platform monotonic counter value and bound via
// AAD to the log's signing key. The counter lives in platform NV — not
// on any disk a rollback attacker controls — so a statedir restored
// from an old snapshot carries a blob whose counter the platform has
// already moved past, and recovery refuses with ErrSealedRollback even
// when segments, sth.json and every witness's persisted head were
// rewound in concert.
//
// Commit protocol (Ariadne-style store-then-increment, so a crash never
// forges a rollback verdict):
//
//  1. seal a blob carrying counter+1 and the new head (no increment);
//  2. atomically replace the blob file on disk;
//  3. increment the counter to match.
//
// Invariant: after a completed commit, blob.Counter == platform
// counter. A crash between 2 and 3 leaves blob.Counter == counter+1 —
// provably the enclave's own freshest blob, since no older blob can
// carry a value above the counter — which recovery accepts and heals by
// performing the missing increment. Every historical blob an attacker
// could restore carries blob.Counter < counter and is refused.
package translog

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"vnfguard/internal/epid"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/statedir"
)

// ErrSealedRollback reports a recovered store older than the head the
// enclave-sealed monotonic counter pins: committed history this
// platform once sealed is missing from the disk (or the sealed head
// itself was deleted or swapped for a stale one).
var ErrSealedRollback = errors.New("translog: on-disk state contradicts enclave-sealed tree head")

// SealedHeadFileName is the sealed-head blob's file name inside the
// store directory.
const SealedHeadFileName = "sealed-head.bin"

// The anchor enclave: a minimal measured module whose only job is to
// keep the seal key and counter access inside an attested identity.
// Bumping the code string (an upgrade) changes MRENCLAVE; bumping the
// SVN alone keeps the MRENCLAVE seal key, and the error mapping in
// sgx.Unseal tells a downgrade (ErrSealSVNRollback) apart from a blob
// that was copied to another machine (ErrSealWrongKey).
const (
	sealedHeadEnclaveCode = "vnfguard translog sealed-head anchor enclave v1"
	sealedHeadEnclaveSVN  = 1

	ecallSealedCommit = "sealed_head_commit"
	ecallSealedOpen   = "sealed_head_open"
	ecallSealedBump   = "sealed_head_bump"
)

// sealedCommitArgs asks the enclave to seal a head under counter+1.
type sealedCommitArgs struct {
	Counter  string `json:"counter"`
	TreeSize uint64 `json:"tree_size"`
	RootHash Hash   `json:"root_hash"`
	AAD      []byte `json:"aad"`
}

// sealedCommitReply returns the sealed blob and the counter value the
// caller must bump to after persisting it.
type sealedCommitReply struct {
	Blob   []byte `json:"blob"`
	BumpTo uint64 `json:"bump_to"`
}

// sealedOpenArgs asks the enclave to unseal and freshness-check a blob.
type sealedOpenArgs struct {
	Counter string `json:"counter"`
	Blob    []byte `json:"blob"`
	AAD     []byte `json:"aad"`
}

// sealedOpenReply reports the unsealed head (when a blob exists) and
// the counter state.
type sealedOpenReply struct {
	HaveBlob    bool   `json:"have_blob"`
	TreeSize    uint64 `json:"tree_size"`
	RootHash    Hash   `json:"root_hash"`
	CounterSeen bool   `json:"counter_seen"`
	CounterVal  uint64 `json:"counter_val"`
	// NeedsHeal marks the crash window: the blob is one ahead of the
	// counter (sealed and persisted, increment lost). The caller bumps
	// after the recovered state checks out.
	NeedsHeal bool   `json:"needs_heal"`
	BumpTo    uint64 `json:"bump_to"`
}

type sealedBumpArgs struct {
	Counter string `json:"counter"`
	Expect  uint64 `json:"expect"`
}

func handleSealedCommit(ctx *sgx.Context, raw []byte) ([]byte, error) {
	var a sealedCommitArgs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, err
	}
	cur, _ := ctx.ReadMonotonicCounter(a.Counter)
	blob := sgx.SealedCounterBlob{Counter: cur + 1, TreeSize: a.TreeSize, RootHash: a.RootHash}
	sealed, err := ctx.Seal(sgx.SealToMRENCLAVE, blob.Encode(), a.AAD)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sealedCommitReply{Blob: sealed, BumpTo: cur + 1})
}

func handleSealedOpen(ctx *sgx.Context, raw []byte) ([]byte, error) {
	var a sealedOpenArgs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, err
	}
	cur, seen := ctx.ReadMonotonicCounter(a.Counter)
	rep := sealedOpenReply{CounterSeen: seen, CounterVal: cur}
	if len(a.Blob) == 0 {
		return json.Marshal(rep)
	}
	pt, err := ctx.Unseal(a.Blob, a.AAD)
	if err != nil {
		return nil, err
	}
	blob, err := sgx.DecodeSealedCounterBlob(pt)
	if err != nil {
		return nil, fmt.Errorf("%w: sealed head payload undecodable: %v", ErrStateCorrupt, err)
	}
	// The freshness verdict happens inside the enclave: only it can
	// compare an authenticated counter value against platform NV.
	switch {
	case blob.Counter < cur:
		return nil, fmt.Errorf("%w: sealed head stamped with counter %d but the platform counter is %d — a newer head was sealed after this blob was written",
			ErrSealedRollback, blob.Counter, cur)
	case blob.Counter > cur+1:
		return nil, fmt.Errorf("%w: sealed head stamped with counter %d but the platform counter is only %d — the platform NV state is inconsistent with this blob",
			ErrSealedRollback, blob.Counter, cur)
	}
	rep.HaveBlob = true
	rep.TreeSize = blob.TreeSize
	rep.RootHash = blob.RootHash
	rep.NeedsHeal = blob.Counter == cur+1
	rep.BumpTo = blob.Counter
	return json.Marshal(rep)
}

func handleSealedBump(ctx *sgx.Context, raw []byte) ([]byte, error) {
	var a sealedBumpArgs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, err
	}
	n, err := ctx.IncrementMonotonicCounter(a.Counter)
	if err != nil {
		return nil, err
	}
	if n != a.Expect {
		return nil, fmt.Errorf("translog: sealed-head counter advanced to %d, expected %d (concurrent writer?)", n, a.Expect)
	}
	return nil, nil
}

// SealedHeadAnchor pins the log's newest committed head in an
// enclave-sealed, monotonic-counter-stamped blob. It implements
// TrustAnchor (and io.Closer: closing destroys the anchor enclave).
type SealedHeadAnchor struct {
	mu      sync.Mutex
	enclave *sgx.Enclave
	path    string
	aad     []byte
	counter string
}

// NewSealedHeadAnchor launches the anchor enclave on platform p (signed
// by vendor) and returns an anchor persisting its sealed blob at path,
// bound to the log signing key logPub: the AAD makes a blob sealed for
// one log useless as freshness evidence for another, and the counter
// name is derived from the same binding so two logs on one platform
// never share a counter.
func NewSealedHeadAnchor(p *sgx.Platform, vendor *ecdsa.PrivateKey, path string, logPub *ecdsa.PublicKey) (*SealedHeadAnchor, error) {
	return newSealedHeadAnchor(p, vendor, path, logPub, sealedHeadEnclaveSVN)
}

// newSealedHeadAnchor lets tests pick the enclave SVN (exercising the
// upgrade/downgrade error mapping).
func newSealedHeadAnchor(p *sgx.Platform, vendor *ecdsa.PrivateKey, path string, logPub *ecdsa.PublicKey, svn uint16) (*SealedHeadAnchor, error) {
	aad, err := x509.MarshalPKIXPublicKey(logPub)
	if err != nil {
		return nil, fmt.Errorf("translog: encoding log key for sealed anchor: %w", err)
	}
	spec := sgx.EnclaveSpec{
		Name:       "translog-sealed-head",
		ProdID:     9,
		SVN:        svn,
		Attributes: sgx.Attributes{Mode64: true},
		HeapPages:  2,
		Modules: []sgx.CodeModule{{
			Name: "sealed-head",
			Code: []byte(sealedHeadEnclaveCode),
			Handlers: map[string]sgx.ECallHandler{
				ecallSealedCommit: handleSealedCommit,
				ecallSealedOpen:   handleSealedOpen,
				ecallSealedBump:   handleSealedBump,
			},
		}},
	}
	ss, err := sgx.SignEnclave(spec, vendor)
	if err != nil {
		return nil, err
	}
	e, err := p.Launch(spec, ss)
	if err != nil {
		return nil, err
	}
	binding := sha256.Sum256(aad)
	return &SealedHeadAnchor{
		enclave: e,
		path:    path,
		aad:     aad,
		counter: fmt.Sprintf("translog-head-%x", binding[:8]),
	}, nil
}

// Name implements TrustAnchor.
func (a *SealedHeadAnchor) Name() string { return "sealed-counter" }

// Close destroys the anchor enclave. Safe to call more than once.
func (a *SealedHeadAnchor) Close() error {
	a.enclave.Destroy()
	return nil
}

// CheckRecovery unseals the on-disk blob, has the enclave verify its
// counter freshness, and compares the pinned head against the
// recovered state. All failure modes surface distinctly: a stale or
// deleted blob is ErrSealedRollback; a blob sealed by a newer enclave
// SVN is sgx.ErrSealSVNRollback (this enclave was downgraded); a blob
// this platform or enclave identity cannot unseal is
// sgx.ErrSealWrongKey (the statedir was copied to another machine, or
// the blob is corrupt).
func (a *SealedHeadAnchor) CheckRecovery(state *RecoveredState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	blob, err := os.ReadFile(a.path)
	if errors.Is(err, os.ErrNotExist) {
		blob = nil
	} else if err != nil {
		return fmt.Errorf("translog: reading sealed head: %w", err)
	}
	raw, err := a.enclave.ECall(ecallSealedOpen, mustJSON(sealedOpenArgs{
		Counter: a.counter, Blob: blob, AAD: a.aad,
	}))
	if err != nil {
		return mapSealedError(err)
	}
	var rep sealedOpenReply
	if err := json.Unmarshal(raw, &rep); err != nil {
		return err
	}
	if !rep.HaveBlob {
		if rep.CounterSeen && rep.CounterVal > 0 {
			return fmt.Errorf("%w: no sealed head on disk but the platform counter is %d — the sealed head was deleted alongside the history it pinned",
				ErrSealedRollback, rep.CounterVal)
		}
		return nil // genuinely fresh: no blob, no counter
	}
	if state.Size < rep.TreeSize {
		return fmt.Errorf("%w: %d durable entries but the sealed head pins a committed size of %d",
			ErrSealedRollback, state.Size, rep.TreeSize)
	}
	root, err := state.RootAt(rep.TreeSize)
	if err != nil {
		return err
	}
	if root != rep.RootHash {
		return fmt.Errorf("%w: recomputed root at size %d does not match the sealed head",
			ErrSealedRollback, rep.TreeSize)
	}
	if rep.NeedsHeal {
		// Crash window: the blob was persisted but its increment was
		// lost. The state checks out, so perform the missing bump now —
		// recovery must leave the invariant (blob counter == platform
		// counter) restored.
		if _, err := a.enclave.ECall(ecallSealedBump, mustJSON(sealedBumpArgs{
			Counter: a.counter, Expect: rep.BumpTo,
		})); err != nil {
			return fmt.Errorf("translog: healing sealed-head counter: %w", err)
		}
	}
	return nil
}

// CommitHead seals the new head under counter+1, atomically replaces
// the blob file, then advances the counter (see the commit protocol in
// the package comment above).
func (a *SealedHeadAnchor) CommitHead(sth SignedTreeHead) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	sealStart := time.Now()
	raw, err := a.enclave.ECall(ecallSealedCommit, mustJSON(sealedCommitArgs{
		Counter: a.counter, TreeSize: sth.Size, RootHash: sth.RootHash, AAD: a.aad,
	}))
	if err != nil {
		return fmt.Errorf("translog: sealing head: %w", err)
	}
	mSealedSeal.Observe(time.Since(sealStart))
	var rep sealedCommitReply
	if err := json.Unmarshal(raw, &rep); err != nil {
		return err
	}
	if err := a.writeBlob(rep.Blob); err != nil {
		return err
	}
	bumpStart := time.Now()
	if _, err := a.enclave.ECall(ecallSealedBump, mustJSON(sealedBumpArgs{
		Counter: a.counter, Expect: rep.BumpTo,
	})); err != nil {
		return fmt.Errorf("translog: advancing sealed-head counter: %w", err)
	}
	mSealedBump.Observe(time.Since(bumpStart))
	return nil
}

// writeBlob atomically and durably replaces the sealed blob file.
// Durability matters for correctness here, not just persistence: the
// counter bump that follows is itself durable, so losing the blob
// rename to a power failure while keeping the bump would make an
// honest crash look like a rollback (stale blob behind an advanced
// counter) — the one verdict this anchor must never fake.
func (a *SealedHeadAnchor) writeBlob(blob []byte) error {
	return atomicWriteFile(a.path, blob, true)
}

// OpenSealedPlatform is the deployment bootstrap both binaries share
// for the sealed-head anchor: an SGX platform whose non-volatile state
// (root-key seed + monotonic counters) lives in nvFile, provisioned
// into the deployment's published EPID group when one exists (the
// anchor never quotes, so a throwaway group serves otherwise). One NV
// file models one machine — the same file across process restarts
// yields the same sealing keys and counter values, and it must live
// outside any statedir a rollback attacker controls.
func OpenSealedPlatform(dir *statedir.Dir, name, nvFile string, model *simtime.CostModel) (*sgx.Platform, error) {
	var issuer *epid.Issuer
	if raw, err := dir.Read(statedir.FileIssuer); err == nil {
		issuer, err = epid.ImportIssuer(raw)
		if err != nil {
			return nil, fmt.Errorf("translog: importing EPID issuer for seal platform: %w", err)
		}
	} else {
		var err error
		issuer, err = epid.NewIssuer(0x5EA1)
		if err != nil {
			return nil, err
		}
	}
	abs, err := filepath.Abs(nvFile)
	if err != nil {
		abs = nvFile
	}
	p, err := sgx.NewPlatform(name, issuer, model, sgx.WithNVFile(abs))
	if err != nil {
		return nil, fmt.Errorf("translog: opening seal platform (NV %s): %w", abs, err)
	}
	return p, nil
}

// mapSealedError annotates the sgx sealing errors with what they mean
// for an operator staring at a refused open, without hiding the
// sentinel from errors.Is.
func mapSealedError(err error) error {
	switch {
	case errors.Is(err, sgx.ErrSealSVNRollback):
		return fmt.Errorf("translog: sealed head was written by a newer enclave version — this anchor enclave was downgraded (not a statedir problem): %w", err)
	case errors.Is(err, sgx.ErrSealWrongKey):
		return fmt.Errorf("translog: sealed head cannot be unsealed under this platform and enclave identity — the store was copied from another machine, the platform NV file is not the one this store was sealed under (check the -sgx-nv path), or the sealed blob is corrupt: %w", err)
	default:
		return err
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic("translog: encoding sealed-anchor ecall args: " + err.Error())
	}
	return data
}
