package host

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/epid"
	"vnfguard/internal/ima"
	"vnfguard/internal/ra"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
	"vnfguard/internal/tpm"
)

// Errors.
var (
	ErrUnknownVNF       = errors.New("host: unknown VNF")
	ErrContainerRunning = errors.New("host: container already running")
	ErrUnknownContainer = errors.New("host: unknown container")
)

// ContainerState is the lifecycle state of a container.
type ContainerState int

// Container states.
const (
	StateCreated ContainerState = iota
	StateRunning
	StateStopped
)

// String names the state.
func (s ContainerState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Container is one deployed VNF container.
type Container struct {
	ID      string
	VNFName string
	Image   string
	State   ContainerState
}

// Config assembles a host.
type Config struct {
	Name string
	// Issuer provisions the platform's EPID membership (IAS-side trust).
	Issuer *epid.Issuer
	// Model is the hardware cost model (nil = zero-cost).
	Model *simtime.CostModel
	// VendorKey signs the enclaves (ISV identity).
	VendorKey *ecdsa.PrivateKey
	// VMPub is the Verification Manager's public key, baked into
	// credential enclave measurements.
	VMPub *ecdsa.PublicKey
	// SPID is the service-provider ID used in quotes.
	SPID sgx.SPID
	// EnableTPM anchors IMA into a TPM (the paper's §4 future work).
	EnableTPM bool
	// Policy overrides the IMA policy (nil = ima.DefaultPolicy).
	Policy *ima.Policy
	// AttestationCode overrides the attestation enclave build (tamper
	// experiments).
	AttestationCode string
}

// Host is one container host.
type Host struct {
	name     string
	platform *sgx.Platform
	imaSys   *ima.System
	tpmDev   *tpm.TPM
	attEncl  *enclaveapp.AttestationEnclave
	vendor   *ecdsa.PrivateKey
	vmPub    *ecdsa.PublicKey
	spid     sgx.SPID
	model    *simtime.CostModel

	mu          sync.Mutex
	fs          map[string][]byte // host filesystem view (merged images)
	containers  map[string]*Container
	enclaves    map[string]*enclaveapp.CredentialEnclave // by VNF name
	nextID      int
	attestCount int64
}

// New assembles a host: platform, IMA (TPM-anchored when enabled) and the
// integrity attestation enclave.
func New(cfg Config) (*Host, error) {
	if cfg.Issuer == nil || cfg.VendorKey == nil || cfg.VMPub == nil {
		return nil, errors.New("host: config requires Issuer, VendorKey and VMPub")
	}
	platform, err := sgx.NewPlatform(cfg.Name, cfg.Issuer, cfg.Model)
	if err != nil {
		return nil, err
	}
	h := &Host{
		name:       cfg.Name,
		platform:   platform,
		vendor:     cfg.VendorKey,
		vmPub:      cfg.VMPub,
		spid:       cfg.SPID,
		model:      cfg.Model,
		fs:         make(map[string][]byte),
		containers: make(map[string]*Container),
		enclaves:   make(map[string]*enclaveapp.CredentialEnclave),
	}
	h.imaSys = ima.NewSystem(cfg.Policy, cfg.Model, []byte("boot:"+cfg.Name))
	if cfg.EnableTPM {
		dev, err := tpm.New(cfg.Model)
		if err != nil {
			return nil, err
		}
		h.tpmDev = dev
		// Anchor the pre-existing entries (boot_aggregate), then stream
		// subsequent measurements into PCR 10.
		text, _ := h.imaSys.Snapshot()
		list, err := ima.ParseList(text)
		if err != nil {
			return nil, err
		}
		for _, e := range list.Entries() {
			if err := dev.Extend(ima.PCRIndex, e.TemplateHash); err != nil {
				return nil, err
			}
		}
		h.imaSys.SetPCRSink(func(th [32]byte) { dev.Extend(ima.PCRIndex, th) })
	}

	services := enclaveapp.HostServices{
		ReadIML: func() (string, error) {
			text, _ := h.imaSys.Snapshot()
			return text, nil
		},
	}
	if h.tpmDev != nil {
		services.TPMQuote = func(nonce []byte) (*tpm.Quote, error) {
			return h.tpmDev.Quote(nonce, []int{ima.PCRIndex})
		}
	}
	var opts []enclaveapp.AttestationEnclaveOption
	if cfg.AttestationCode != "" {
		opts = append(opts, enclaveapp.WithAttestationCode(cfg.AttestationCode))
	}
	h.attEncl, err = enclaveapp.NewAttestationEnclave(platform, cfg.VendorKey, services, cfg.SPID, opts...)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Platform returns the SGX platform.
func (h *Host) Platform() *sgx.Platform { return h.platform }

// IMA returns the measurement subsystem.
func (h *Host) IMA() *ima.System { return h.imaSys }

// TPM returns the TPM device, or nil.
func (h *Host) TPM() *tpm.TPM { return h.tpmDev }

// HasTPM reports TPM availability.
func (h *Host) HasTPM() bool { return h.tpmDev != nil }

// AttestationEnclaveIdentity returns the launched attestation enclave
// identity.
func (h *Host) AttestationEnclaveIdentity() sgx.Identity { return h.attEncl.Identity() }

// AttestCount reports served attestation requests.
func (h *Host) AttestCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.attestCount
}

// RunContainer deploys an image as a VNF container: the image filesystem
// merges into the host view, the entrypoint exec and config reads fire IMA
// events, and a credential enclave is launched for the VNF.
func (h *Host) RunContainer(im *Image, vnfName string) (*Container, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	h.mu.Lock()
	if _, dup := h.enclaves[vnfName]; dup {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrContainerRunning, vnfName)
	}
	h.nextID++
	id := fmt.Sprintf("%s-c%03d", h.name, h.nextID)
	fs := im.Flatten()
	for p, content := range fs {
		h.fs[containerPath(vnfName, p)] = content
	}
	h.mu.Unlock()

	// Execution measurements, as the kernel would produce them.
	h.imaSys.HandleEvent(ima.Event{
		Path: containerPath(vnfName, im.Entrypoint),
		Hook: ima.HookBprmCheck, Mask: ima.MayExec, UID: 0,
	}, fs[im.Entrypoint])
	for _, cfgPath := range im.Configs {
		h.imaSys.HandleEvent(ima.Event{
			Path: containerPath(vnfName, cfgPath),
			Hook: ima.HookFileCheck, Mask: ima.MayRead, UID: 0,
		}, fs[cfgPath])
	}

	ce, err := enclaveapp.NewCredentialEnclave(h.platform, h.vendor, h.vmPub, h.spid)
	if err != nil {
		return nil, fmt.Errorf("host: launching credential enclave: %w", err)
	}
	c := &Container{ID: id, VNFName: vnfName, Image: im.Ref(), State: StateRunning}
	h.mu.Lock()
	h.containers[id] = c
	h.enclaves[vnfName] = ce
	h.mu.Unlock()
	return c, nil
}

// containerPath namespaces an image path under the VNF's rootfs, as the
// host kernel sees container files.
func containerPath(vnf, p string) string {
	return "/var/lib/containers/" + vnf + "/rootfs" + p
}

// StopContainer stops a container and destroys its credential enclave
// (wiping key material).
func (h *Host) StopContainer(id string) error {
	h.mu.Lock()
	c, ok := h.containers[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownContainer, id)
	}
	c.State = StateStopped
	ce := h.enclaves[c.VNFName]
	delete(h.enclaves, c.VNFName)
	h.mu.Unlock()
	if ce != nil {
		ce.Destroy()
	}
	return nil
}

// Containers lists containers sorted by ID.
func (h *Host) Containers() []Container {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Container, 0, len(h.containers))
	for _, c := range h.containers {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CredentialEnclave returns the enclave serving a VNF.
func (h *Host) CredentialEnclave(vnfName string) (*enclaveapp.CredentialEnclave, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ce, ok := h.enclaves[vnfName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVNF, vnfName)
	}
	return ce, nil
}

// TamperBinary simulates a host compromise: the on-disk binary of a
// running VNF is replaced and re-executed, producing a divergent
// measurement on the next access.
func (h *Host) TamperBinary(vnfName, path string, newContent []byte) {
	full := containerPath(vnfName, path)
	h.mu.Lock()
	h.fs[full] = newContent
	h.mu.Unlock()
	h.imaSys.HandleEvent(ima.Event{
		Path: full, Hook: ima.HookBprmCheck, Mask: ima.MayExec, UID: 0,
	}, newContent)
}

// ---- Verification-Manager-facing surface (satisfies verifier.HostConn) ----

// Attest collects host evidence (steps 1–2 of the workflow).
func (h *Host) Attest(nonce []byte, useTPM bool) (*enclaveapp.HostEvidence, error) {
	if useTPM && h.tpmDev == nil {
		return nil, errors.New("host: TPM attestation requested but host has no TPM")
	}
	h.mu.Lock()
	h.attestCount++
	h.mu.Unlock()
	return h.attEncl.CollectEvidence(nonce, useTPM)
}

// VNFs lists VNFs with live credential enclaves.
func (h *Host) VNFs() ([]string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.enclaves))
	for name := range h.enclaves {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// VNFRAMsg1 starts the RA exchange for a VNF's credential enclave.
func (h *Host) VNFRAMsg1(vnf string) (*ra.Msg1, error) {
	ce, err := h.CredentialEnclave(vnf)
	if err != nil {
		return nil, err
	}
	return ce.RAMsg1()
}

// VNFRAMsg2 relays msg2 and returns msg3.
func (h *Host) VNFRAMsg2(vnf string, m2 *ra.Msg2) (*ra.Msg3, error) {
	ce, err := h.CredentialEnclave(vnf)
	if err != nil {
		return nil, err
	}
	return ce.RAProcessMsg2(m2)
}

// VNFRAMsg4 relays the attestation result.
func (h *Host) VNFRAMsg4(vnf string, m4 *ra.Msg4) error {
	ce, err := h.CredentialEnclave(vnf)
	if err != nil {
		return err
	}
	return ce.RAFinalize(m4)
}

// VNFFrame relays one secure-channel frame.
func (h *Host) VNFFrame(vnf string, frame []byte) ([]byte, error) {
	ce, err := h.CredentialEnclave(vnf)
	if err != nil {
		return nil, err
	}
	return ce.HandleFrame(frame)
}
