package host

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"vnfguard/internal/enclaveapp"
	"vnfguard/internal/ra"
)

// Agent API paths (the host daemon's management surface).
const (
	pathAttest = "/agent/v1/attest"
	pathVNFs   = "/agent/v1/vnfs"
	pathRAMsg1 = "/agent/v1/vnf/{name}/ra/msg1"
	pathRAMsg2 = "/agent/v1/vnf/{name}/ra/msg2"
	pathRAMsg4 = "/agent/v1/vnf/{name}/ra/msg4"
	pathFrame  = "/agent/v1/vnf/{name}/frame"
)

type attestRequest struct {
	NonceB64 string `json:"nonce"`
	UseTPM   bool   `json:"use_tpm"`
}

type bytesMsg struct {
	DataB64 string `json:"data"`
}

func encodeBytes(b []byte) bytesMsg {
	return bytesMsg{DataB64: base64.StdEncoding.EncodeToString(b)}
}

func (m bytesMsg) decode() ([]byte, error) {
	return base64.StdEncoding.DecodeString(m.DataB64)
}

// Handler exposes the host over HTTP for a remote Verification Manager.
// In deployments this endpoint runs under mutual TLS on the management
// network; transport protection is the operator's choice and orthogonal to
// the credential workflow being reproduced.
func (h *Host) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathAttest, func(w http.ResponseWriter, r *http.Request) {
		var req attestRequest
		if err := readJSON(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		nonce, err := base64.StdEncoding.DecodeString(req.NonceB64)
		if err != nil {
			http.Error(w, "nonce not base64", http.StatusBadRequest)
			return
		}
		ev, err := h.Attest(nonce, req.UseTPM)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, ev)
	})
	mux.HandleFunc("GET "+pathVNFs, func(w http.ResponseWriter, r *http.Request) {
		names, err := h.VNFs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, names)
	})
	mux.HandleFunc("POST "+pathRAMsg1, func(w http.ResponseWriter, r *http.Request) {
		m1, err := h.VNFRAMsg1(r.PathValue("name"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, encodeBytes(m1.Encode()))
	})
	mux.HandleFunc("POST "+pathRAMsg2, func(w http.ResponseWriter, r *http.Request) {
		raw, err := readBytesMsg(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m2, err := ra.DecodeMsg2(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m3, err := h.VNFRAMsg2(r.PathValue("name"), m2)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, encodeBytes(m3.Encode()))
	})
	mux.HandleFunc("POST "+pathRAMsg4, func(w http.ResponseWriter, r *http.Request) {
		raw, err := readBytesMsg(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m4, err := ra.DecodeMsg4(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.VNFRAMsg4(r.PathValue("name"), m4); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST "+pathFrame, func(w http.ResponseWriter, r *http.Request) {
		raw, err := readBytesMsg(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := h.VNFFrame(r.PathValue("name"), raw)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, encodeBytes(resp))
	})
	return mux
}

func readJSON(r *http.Request, v any) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func readBytesMsg(r *http.Request) ([]byte, error) {
	var m bytesMsg
	if err := readJSON(r, &m); err != nil {
		return nil, err
	}
	return m.decode()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if strings.Contains(err.Error(), "unknown VNF") {
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}

// Client talks to a remote host agent; it satisfies the same interface the
// in-process Host does, so the Verification Manager is transport-agnostic.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds an agent client.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{}}
}

func (c *Client) post(path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reader = bytes.NewReader(buf)
	}
	resp, err := c.http.Post(c.base+path, "application/json", reader)
	if err != nil {
		return fmt.Errorf("host client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("host client: POST %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Attest requests host evidence.
func (c *Client) Attest(nonce []byte, useTPM bool) (*enclaveapp.HostEvidence, error) {
	var ev enclaveapp.HostEvidence
	err := c.post(pathAttest, attestRequest{
		NonceB64: base64.StdEncoding.EncodeToString(nonce), UseTPM: useTPM,
	}, &ev)
	if err != nil {
		return nil, err
	}
	return &ev, nil
}

// VNFs lists the host's VNFs.
func (c *Client) VNFs() ([]string, error) {
	resp, err := c.http.Get(c.base + pathVNFs)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("host client: vnfs status %d", resp.StatusCode)
	}
	var names []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}

func vnfPath(template, name string) string {
	return strings.Replace(template, "{name}", name, 1)
}

// VNFRAMsg1 starts the RA exchange remotely.
func (c *Client) VNFRAMsg1(vnf string) (*ra.Msg1, error) {
	var out bytesMsg
	if err := c.post(vnfPath(pathRAMsg1, vnf), nil, &out); err != nil {
		return nil, err
	}
	raw, err := out.decode()
	if err != nil {
		return nil, err
	}
	return ra.DecodeMsg1(raw)
}

// VNFRAMsg2 relays msg2, returning msg3.
func (c *Client) VNFRAMsg2(vnf string, m2 *ra.Msg2) (*ra.Msg3, error) {
	var out bytesMsg
	if err := c.post(vnfPath(pathRAMsg2, vnf), encodeBytes(m2.Encode()), &out); err != nil {
		return nil, err
	}
	raw, err := out.decode()
	if err != nil {
		return nil, err
	}
	return ra.DecodeMsg3(raw)
}

// VNFRAMsg4 relays msg4.
func (c *Client) VNFRAMsg4(vnf string, m4 *ra.Msg4) error {
	return c.post(vnfPath(pathRAMsg4, vnf), encodeBytes(m4.Encode()), nil)
}

// VNFFrame relays a secure-channel frame.
func (c *Client) VNFFrame(vnf string, frame []byte) ([]byte, error) {
	var out bytesMsg
	if err := c.post(vnfPath(pathFrame, vnf), encodeBytes(frame), &out); err != nil {
		return nil, err
	}
	return out.decode()
}
