// Package host models the container host of the paper's deployment: a
// platform with SGX, Linux IMA (optionally TPM-anchored), a Docker-like
// container runtime whose executions feed the measurement list, and the
// host agent that exposes attestation and enclave access to the
// Verification Manager.
package host

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Layer is one content-addressed image layer.
type Layer struct {
	// Files maps absolute paths to contents.
	Files map[string][]byte
}

// Digest computes the layer's content digest over sorted paths.
func (l Layer) Digest() string {
	paths := make([]string, 0, len(l.Files))
	for p := range l.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
		h.Write(l.Files[p])
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Image is a layered container image.
type Image struct {
	Name   string
	Tag    string
	Layers []Layer
	// Entrypoint is the binary executed at container start (measured via
	// BPRM_CHECK).
	Entrypoint string
	// Configs are files read at startup (measured via FILE_CHECK when the
	// policy selects them).
	Configs []string
}

// Ref returns name:tag.
func (im *Image) Ref() string { return im.Name + ":" + im.Tag }

// Digest computes the image manifest digest (over layer digests and
// metadata).
func (im *Image) Digest() string {
	h := sha256.New()
	h.Write([]byte(im.Ref()))
	h.Write([]byte(im.Entrypoint))
	for _, c := range im.Configs {
		h.Write([]byte(c))
	}
	for _, l := range im.Layers {
		h.Write([]byte(l.Digest()))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Flatten merges layers into a filesystem view (later layers win).
func (im *Image) Flatten() map[string][]byte {
	fs := make(map[string][]byte)
	for _, l := range im.Layers {
		for p, content := range l.Files {
			fs[p] = append([]byte(nil), content...)
		}
	}
	return fs
}

// Validate checks structural invariants before a run.
func (im *Image) Validate() error {
	if im.Name == "" || im.Tag == "" {
		return errors.New("host: image requires name and tag")
	}
	if im.Entrypoint == "" {
		return errors.New("host: image requires an entrypoint")
	}
	fs := im.Flatten()
	if _, ok := fs[im.Entrypoint]; !ok {
		return fmt.Errorf("host: entrypoint %q not present in image", im.Entrypoint)
	}
	for _, c := range im.Configs {
		if _, ok := fs[c]; !ok {
			return fmt.Errorf("host: config %q not present in image", c)
		}
	}
	return nil
}

// Registry is a content store for images.
type Registry struct {
	mu     sync.Mutex
	images map[string]*Image
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: make(map[string]*Image)}
}

// Push stores an image.
func (r *Registry) Push(im *Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[im.Ref()] = im
	return nil
}

// Pull fetches an image by ref.
func (r *Registry) Pull(ref string) (*Image, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	im, ok := r.images[ref]
	if !ok {
		return nil, fmt.Errorf("host: image %q not found", ref)
	}
	return im, nil
}

// List returns sorted refs.
func (r *Registry) List() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.images))
	for ref := range r.images {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}
