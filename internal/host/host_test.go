package host

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"vnfguard/internal/epid"
	"vnfguard/internal/ima"
	"vnfguard/internal/sgx"
	"vnfguard/internal/simtime"
)

func testImage() *Image {
	return &Image{
		Name: "vnf-firewall", Tag: "1.0",
		Entrypoint: "/usr/bin/firewall",
		Configs:    []string{"/etc/firewall.conf"},
		Layers: []Layer{
			{Files: map[string][]byte{"/usr/bin/firewall": []byte("firewall binary v1")}},
			{Files: map[string][]byte{"/etc/firewall.conf": []byte("allow 443")}},
		},
	}
}

func newHost(t *testing.T, enableTPM bool) *Host {
	t.Helper()
	issuer, err := epid.NewIssuer(400)
	if err != nil {
		t.Fatal(err)
	}
	vendor, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{
		Name: "host-a", Issuer: issuer, Model: simtime.ZeroCosts(),
		VendorKey: vendor, VMPub: &vm.PublicKey, SPID: sgx.SPID{1},
		EnableTPM: enableTPM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestImageDigestAndFlatten(t *testing.T) {
	im := testImage()
	d1 := im.Digest()
	im2 := testImage()
	if im2.Digest() != d1 {
		t.Fatal("digest not deterministic")
	}
	im2.Layers[0].Files["/usr/bin/firewall"] = []byte("evil")
	if im2.Digest() == d1 {
		t.Fatal("content change did not change digest")
	}
	// Later layers override earlier ones.
	im3 := testImage()
	im3.Layers = append(im3.Layers, Layer{Files: map[string][]byte{"/etc/firewall.conf": []byte("allow all")}})
	fs := im3.Flatten()
	if string(fs["/etc/firewall.conf"]) != "allow all" {
		t.Fatal("layer override failed")
	}
}

func TestImageValidation(t *testing.T) {
	im := testImage()
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testImage()
	bad.Entrypoint = "/missing"
	if err := bad.Validate(); err == nil {
		t.Fatal("missing entrypoint accepted")
	}
	bad2 := testImage()
	bad2.Configs = []string{"/missing.conf"}
	if err := bad2.Validate(); err == nil {
		t.Fatal("missing config accepted")
	}
	bad3 := testImage()
	bad3.Tag = ""
	if err := bad3.Validate(); err == nil {
		t.Fatal("untagged image accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	im := testImage()
	if err := r.Push(im); err != nil {
		t.Fatal(err)
	}
	got, err := r.Pull("vnf-firewall:1.0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != im.Digest() {
		t.Fatal("pulled image differs")
	}
	if _, err := r.Pull("nope:1"); err == nil {
		t.Fatal("missing image pulled")
	}
	if list := r.List(); len(list) != 1 || list[0] != "vnf-firewall:1.0" {
		t.Fatalf("list = %v", list)
	}
}

func TestRunContainerMeasuresExecution(t *testing.T) {
	h := newHost(t, false)
	before := h.IMA().Len()
	c, err := h.RunContainer(testImage(), "fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StateRunning {
		t.Fatalf("state = %v", c.State)
	}
	// Entrypoint (exec) + config (root read under /etc... path is
	// namespaced so the default policy's /etc rule does not match; the
	// BPRM_CHECK rule does).
	if h.IMA().Len() <= before {
		t.Fatal("container run produced no measurements")
	}
	text, _ := h.IMA().Snapshot()
	if !strings.Contains(text, "/var/lib/containers/fw-1/rootfs/usr/bin/firewall") {
		t.Fatalf("IML missing entrypoint:\n%s", text)
	}
	// The credential enclave exists.
	if _, err := h.CredentialEnclave("fw-1"); err != nil {
		t.Fatal(err)
	}
}

func TestRunContainerDuplicateVNF(t *testing.T) {
	h := newHost(t, false)
	if _, err := h.RunContainer(testImage(), "fw-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunContainer(testImage(), "fw-1"); !errors.Is(err, ErrContainerRunning) {
		t.Fatalf("got %v", err)
	}
}

func TestStopContainerDestroysEnclave(t *testing.T) {
	h := newHost(t, false)
	c, err := h.RunContainer(testImage(), "fw-1")
	if err != nil {
		t.Fatal(err)
	}
	ce, err := h.CredentialEnclave("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StopContainer(c.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CredentialEnclave("fw-1"); !errors.Is(err, ErrUnknownVNF) {
		t.Fatalf("got %v", err)
	}
	// Enclave is destroyed: calls fail.
	if _, err := ce.RAMsg1(); !errors.Is(err, sgx.ErrDestroyed) {
		t.Fatalf("got %v", err)
	}
	if err := h.StopContainer("ghost"); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("got %v", err)
	}
}

func TestAttestProducesBoundEvidence(t *testing.T) {
	h := newHost(t, false)
	h.RunContainer(testImage(), "fw-1")
	nonce := []byte("vm-nonce")
	ev, err := h.Attest(nonce, false)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sgx.DecodeQuote(ev.Quote)
	if err != nil {
		t.Fatal(err)
	}
	if q.Body.ReportData != sgx.ReportDataFromHash(ev.BindingDigest()) {
		t.Fatal("evidence binding broken")
	}
	if h.AttestCount() != 1 {
		t.Fatal("attest counter")
	}
}

func TestAttestTPMWithoutDevice(t *testing.T) {
	h := newHost(t, false)
	if _, err := h.Attest([]byte("n"), true); err == nil {
		t.Fatal("TPM attestation succeeded without TPM")
	}
}

func TestAttestWithTPMAnchorsIML(t *testing.T) {
	h := newHost(t, true)
	h.RunContainer(testImage(), "fw-1")
	ev, err := h.Attest([]byte("n"), true)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ima.ParseList(ev.IML)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TPMQuote == nil || list.Aggregate() != ev.TPMQuote.PCRValues[0] {
		t.Fatal("TPM PCR does not anchor the IML")
	}
}

func TestTamperBinaryChangesIML(t *testing.T) {
	h := newHost(t, false)
	h.RunContainer(testImage(), "fw-1")
	len1 := h.IMA().Len()
	h.TamperBinary("fw-1", "/usr/bin/firewall", []byte("backdoored"))
	if h.IMA().Len() != len1+1 {
		t.Fatal("tampered execution not measured")
	}
}

func TestAgentHTTPRoundTrip(t *testing.T) {
	h := newHost(t, false)
	h.RunContainer(testImage(), "fw-1")
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	names, err := client.VNFs()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "fw-1" {
		t.Fatalf("vnfs = %v", names)
	}
	ev, err := client.Attest([]byte("nonce"), false)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sgx.DecodeQuote(ev.Quote)
	if err != nil {
		t.Fatal(err)
	}
	if local.Body.ReportData != sgx.ReportDataFromHash(ev.BindingDigest()) {
		t.Fatal("evidence binding lost over HTTP")
	}
	// RA msg1 over HTTP matches the in-process shape.
	m1, err := client.VNFRAMsg1("fw-1")
	if err != nil {
		t.Fatal(err)
	}
	if m1.GID != h.Platform().GID() {
		t.Fatal("GID mismatch over HTTP")
	}
	if _, err := client.VNFRAMsg1("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown VNF: %v", err)
	}
}
