module vnfguard

go 1.24
